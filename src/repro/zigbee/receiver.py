"""ZigBee receiver: O-QPSK matched filter, DSSS correlation, frame parse.

The receiver is deliberately soft end to end: chip estimates stay real-
valued until the per-symbol PN correlation, so burst interference (e.g. a
WiFi preamble overlapping a few chips) degrades the correlation score
instead of flipping hard decisions — the DSSS robustness the paper's
Section IV-E relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dsp.dsss import despread_batch
from repro.dsp.oqpsk import PULSE_SAMPLES, demodulate_chips_batch
from repro.errors import DecodingError, SynchronizationError
from repro.zigbee.chips import chip_table
from repro.zigbee.frame import ZigbeeFrame, parse_ppdu_bits
from repro.zigbee.params import (
    CHIPS_PER_SYMBOL,
    PREAMBLE_SYMBOLS,
    SAMPLES_PER_CHIP,
)


@dataclass
class ZigbeeReception:
    """Result of decoding one ZigBee frame.

    Attributes:
        frame: recovered frame (PSDU octets).
        symbol_scores: per-symbol normalised correlation scores, a direct
            reception-quality trace.
        start_sample: sample index where the frame began.
    """

    frame: ZigbeeFrame
    symbol_scores: List[float]
    start_sample: int


class ZigbeeReceiver:
    """Counterpart of :class:`repro.zigbee.transmitter.ZigbeeTransmitter`."""

    def __init__(self, sync_threshold: float = 0.5) -> None:
        self.sync_threshold = sync_threshold

    def receive(
        self, waveform: np.ndarray, start_sample: Optional[int] = None
    ) -> ZigbeeReception:
        """Decode a frame from baseband samples.

        Args:
            waveform: samples containing one frame.
            start_sample: first sample of the frame if known; otherwise the
                preamble correlator searches for it.
        """
        return self.receive_frames([waveform], [start_sample])[0]

    def receive_frames(
        self,
        waveforms: Sequence[np.ndarray],
        start_samples: Optional[Sequence[Optional[int]]] = None,
        on_error: str = "raise",
    ) -> "List[Optional[ZigbeeReception]]":
        """Decode many frames, batching demodulation across equal lengths.

        Synchronisation runs per frame; frames that yield the same chip
        count share one matched-filter and one DSSS-correlation batch.
        Results keep input order.

        Args:
            on_error: "raise" propagates the first per-frame failure
                (scalar semantics); "none" records a ``None`` result for a
                frame that fails synchronisation or parsing and keeps
                decoding the rest (the Monte-Carlo batch-trial mode).
        """
        if on_error not in ("raise", "none"):
            raise DecodingError(f"unknown on_error mode {on_error!r}")
        if start_samples is None:
            start_samples = [None] * len(waveforms)
        arrs = [np.asarray(w, dtype=np.complex128).ravel() for w in waveforms]
        starts: List[Optional[int]] = []
        chip_counts: List[int] = []
        for arr, start in zip(arrs, start_samples):
            try:
                if start is None:
                    start = self._synchronise(arr)
                available = arr.size - start
                n_chips = (available // SAMPLES_PER_CHIP) & ~1
                n_chips -= n_chips % CHIPS_PER_SYMBOL
                if n_chips < CHIPS_PER_SYMBOL * (PREAMBLE_SYMBOLS + 4):
                    raise SynchronizationError("waveform too short for SHR + PHR")
            except Exception:
                if on_error == "raise":
                    raise
                starts.append(None)
                chip_counts.append(0)
                continue
            starts.append(start)
            chip_counts.append(n_chips)
        groups: Dict[int, List[int]] = {}
        for idx, n_chips in enumerate(chip_counts):
            if starts[idx] is None:
                continue
            groups.setdefault(n_chips, []).append(idx)
        results: List[Optional[ZigbeeReception]] = [None] * len(arrs)
        for n_chips, indices in groups.items():
            needed = (n_chips // 2) * PULSE_SAMPLES + SAMPLES_PER_CHIP
            segments = np.empty((len(indices), needed), dtype=np.complex128)
            for row, idx in enumerate(indices):
                chunk = arrs[idx][starts[idx] : starts[idx] + needed]
                if chunk.size < needed:
                    raise DecodingError("waveform too short for requested chips")
                segments[row] = chunk
            soft = demodulate_chips_batch(segments, n_chips)
            bits, scores = despread_batch(soft)
            for row, idx in enumerate(indices):
                try:
                    frame = parse_ppdu_bits(bits[row])
                except Exception:
                    if on_error == "raise":
                        raise
                    continue
                results[idx] = ZigbeeReception(
                    frame=frame,
                    symbol_scores=[float(s) for s in scores[row][: frame.n_symbols]],
                    start_sample=starts[idx],
                )
        return results  # type: ignore[return-value]

    def _synchronise(self, waveform: np.ndarray) -> int:
        """Find the frame start by correlating against the zero symbol.

        The preamble is eight repetitions of data symbol 0's chip sequence;
        one modulated symbol is used as the sync reference.
        """
        from repro.zigbee.oqpsk import modulate_chips

        ref = modulate_chips(chip_table()[0])
        ref = ref[: CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP]
        if waveform.size < ref.size:
            raise SynchronizationError("waveform shorter than one symbol")
        corr = np.abs(np.correlate(waveform, ref, mode="valid"))
        energy = np.sqrt(
            np.convolve(np.abs(waveform) ** 2, np.ones(ref.size), mode="valid")
        )
        ref_energy = float(np.sqrt(np.sum(np.abs(ref) ** 2)))
        with np.errstate(divide="ignore", invalid="ignore"):
            metric = np.where(energy > 0, corr / (energy * ref_energy), 0.0)
        strong = np.flatnonzero(metric >= self.sync_threshold)
        if strong.size == 0:
            best = float(metric.max()) if metric.size else 0.0
            raise SynchronizationError(f"no preamble found (best metric {best:.3f})")
        # The earliest threshold crossing is the start of the first preamble
        # symbol; refine to the strongest sample within one symbol period.
        first = int(strong[0])
        period = ref.size
        window_end = min(first + period // 2, metric.size)
        peak = first + int(np.argmax(metric[first:window_end]))
        return peak


def decode_frames(waveforms: Sequence[np.ndarray]) -> List[bytes]:
    """Batch-decode O-QPSK waveforms straight to PSDU octet strings.

    Thin convenience over :meth:`ZigbeeReceiver.receive_frames`, in input
    order.
    """
    return [rx.frame.psdu for rx in ZigbeeReceiver().receive_frames(waveforms)]
