"""ZigBee receiver: O-QPSK matched filter, DSSS correlation, frame parse.

The receiver is deliberately soft end to end: chip estimates stay real-
valued until the per-symbol PN correlation, so burst interference (e.g. a
WiFi preamble overlapping a few chips) degrades the correlation score
instead of flipping hard decisions — the DSSS robustness the paper's
Section IV-E relies on.

The PN correlation dispatches through the :mod:`repro.kernels` registry
(kernel ``dsss_correlate``); the resolved backend is recorded per decoded
group in the ``zigbee.rx.kernel.<backend>`` telemetry counter, mirroring
the WiFi receiver's Viterbi provenance counter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import kernels, telemetry
from repro.dsp.dsss import despread_batch
from repro.dsp.oqpsk import PULSE_SAMPLES, demodulate_chips_batch
from repro.errors import (
    DecodingError,
    InvalidWaveformError,
    ReproError,
    SynchronizationError,
    TruncatedFrameError,
)
from repro.zigbee.chips import chip_table
from repro.zigbee.frame import ZigbeeFrame, parse_ppdu_bits
from repro.zigbee.params import (
    CHIPS_PER_SYMBOL,
    PREAMBLE_SYMBOLS,
    SAMPLE_RATE_HZ,
    SAMPLES_PER_CHIP,
)

#: Samples of one despread symbol (32 chips at 4 samples/chip).
_SYMBOL_SAMPLES: int = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP

#: Segment length (samples) of the CFO-tolerant sync correlator.  Within
#: 16 samples (2 us) even a 100 kHz offset rotates the carrier by only
#: ~1.3 rad, so per-segment correlations stay near-coherent and their
#: magnitudes combine non-coherently across the symbol.
_SYNC_SEGMENT_SAMPLES: int = 16


def _preamble_reference() -> np.ndarray:
    """Clean preamble waveform (eight symbol-0 repetitions, 1024 samples).

    Truncated to whole symbol periods: every sample in this span of a real
    frame is produced by preamble chips alone, so it matches the received
    preamble exactly on an ideal channel.
    """
    from repro.zigbee.oqpsk import modulate_chips

    chips = np.tile(chip_table()[0], PREAMBLE_SYMBOLS)
    return modulate_chips(chips)[: PREAMBLE_SYMBOLS * _SYMBOL_SAMPLES]


@dataclass
class ZigbeeReception:
    """Result of decoding one ZigBee frame.

    Attributes:
        frame: recovered frame (PSDU octets).
        symbol_scores: per-symbol normalised correlation scores, a direct
            reception-quality trace.
        start_sample: sample index where the frame began.
    """

    frame: ZigbeeFrame
    symbol_scores: List[float]
    start_sample: int


class ZigbeeReceiver:
    """Counterpart of :class:`repro.zigbee.transmitter.ZigbeeTransmitter`."""

    def __init__(self, sync_threshold: float = 0.5) -> None:
        self.sync_threshold = sync_threshold

    def receive(
        self,
        waveform: np.ndarray,
        start_sample: Optional[int] = None,
        correct_cfo: bool = False,
    ) -> ZigbeeReception:
        """Decode a frame from baseband samples.

        Args:
            waveform: samples containing one frame.
            start_sample: first sample of the frame if known; otherwise the
                preamble correlator searches for it.
            correct_cfo: estimate the carrier frequency offset from the
                preamble and de-rotate before despreading (see
                :meth:`receive_frames`).
        """
        return self.receive_frames(
            [waveform], [start_sample], correct_cfo=correct_cfo
        )[0]

    def receive_frames(
        self,
        waveforms: Sequence[np.ndarray],
        start_samples: Optional[Sequence[Optional[int]]] = None,
        on_error: str = "raise",
        correct_cfo: bool = False,
    ) -> "List[Optional[ZigbeeReception]]":
        """Decode many frames, batching demodulation across equal lengths.

        Synchronisation runs per frame; frames that yield the same chip
        count share one matched-filter and one DSSS-correlation batch.
        Results keep input order.

        Args:
            on_error: "raise" propagates the first per-frame failure
                (scalar semantics); "none" records a ``None`` result for a
                frame that fails synchronisation or parsing and keeps
                decoding the rest (the Monte-Carlo batch-trial mode).
            correct_cfo: estimate each frame's carrier frequency offset
                from the preamble (two-stage data-aided estimator, see
                :meth:`estimate_cfo`), de-rotate the samples and align the
                constant carrier phase before despreading.  Off by default:
                on a CFO-free channel the estimator is a no-op in
                expectation but its noise-driven residual would perturb
                otherwise bit-stable decodes, so the correction is opt-in
                for impaired channels.
        """
        if on_error not in ("raise", "none"):
            raise DecodingError(f"unknown on_error mode {on_error!r}")
        if start_samples is None:
            start_samples = [None] * len(waveforms)
        tel = telemetry.current()
        tel.count("zigbee.rx.frames", len(waveforms))
        arrs = [np.asarray(w, dtype=np.complex128).ravel() for w in waveforms]
        starts: List[Optional[int]] = []
        chip_counts: List[int] = []
        with tel.span("zigbee.rx.sync"):
            for idx, (arr, start) in enumerate(zip(arrs, start_samples)):
                try:
                    if not np.all(np.isfinite(arr)):
                        raise InvalidWaveformError(
                            "waveform contains NaN or Inf samples"
                        )
                    if start is None:
                        start = self._synchronise(arr)
                    if correct_cfo:
                        arrs[idx] = arr = self._correct_cfo(arr, start)
                    # The matched filter needs one trailing half-pulse (the Q
                    # rail's offset) beyond the last chip, so only chips whose
                    # tail fits count as available — a truncated capture simply
                    # yields fewer symbols instead of an out-of-range read.
                    available = arr.size - start
                    n_chips = ((available - SAMPLES_PER_CHIP) // SAMPLES_PER_CHIP) & ~1
                    n_chips -= n_chips % CHIPS_PER_SYMBOL
                    if n_chips < CHIPS_PER_SYMBOL * (PREAMBLE_SYMBOLS + 4):
                        raise SynchronizationError("waveform too short for SHR + PHR")
                except ReproError as exc:
                    tel.count(f"zigbee.rx.drop.{type(exc).__name__}")
                    if on_error == "raise":
                        raise
                    starts.append(None)
                    chip_counts.append(0)
                    continue
                except Exception:
                    # A non-ReproError here is a genuine bug, never a lost
                    # frame: propagate regardless of on_error.
                    tel.count("zigbee.rx.error.unexpected")
                    raise
                starts.append(start)
                chip_counts.append(n_chips)
        groups: Dict[int, List[int]] = {}
        for idx, n_chips in enumerate(chip_counts):
            if starts[idx] is None:
                continue
            groups.setdefault(n_chips, []).append(idx)
        results: List[Optional[ZigbeeReception]] = [None] * len(arrs)
        if groups:
            tel.count(
                f"zigbee.rx.kernel.{kernels.resolved_backend('dsss_correlate')}",
                sum(len(v) for v in groups.values()),
            )
        with tel.span("zigbee.rx.decode"):
            for n_chips, indices in groups.items():
                needed = (n_chips // 2) * PULSE_SAMPLES + SAMPLES_PER_CHIP
                segments, kept = self._assemble_segments(
                    arrs, starts, indices, needed, on_error, tel
                )
                if not kept:
                    continue
                soft = demodulate_chips_batch(segments, n_chips)
                bits, scores = despread_batch(soft)
                for row, idx in enumerate(kept):
                    try:
                        frame = parse_ppdu_bits(bits[row])
                    except ReproError as exc:
                        tel.count(f"zigbee.rx.drop.{type(exc).__name__}")
                        if on_error == "raise":
                            raise
                        continue
                    except Exception:
                        tel.count("zigbee.rx.error.unexpected")
                        raise
                    results[idx] = ZigbeeReception(
                        frame=frame,
                        symbol_scores=[float(s) for s in scores[row][: frame.n_symbols]],
                        start_sample=starts[idx],
                    )
        tel.count("zigbee.rx.ok", sum(1 for r in results if r is not None))
        return results  # type: ignore[return-value]

    @staticmethod
    def _assemble_segments(
        arrs: Sequence[np.ndarray],
        starts: Sequence[Optional[int]],
        indices: Sequence[int],
        needed: int,
        on_error: str,
        tel: "telemetry.Telemetry",
    ) -> "Tuple[np.ndarray, List[int]]":
        """Stack the group's frame segments, honouring ``on_error``.

        A capture too short for its announced chip count is a per-frame
        failure: under ``on_error="none"`` the frame is dropped (counted as
        a :class:`TruncatedFrameError`) and the rest of the batch decodes;
        under ``"raise"`` the typed error propagates — either way one
        truncated capture can no longer poison its whole batch.
        """
        rows: List[np.ndarray] = []
        kept: List[int] = []
        for idx in indices:
            chunk = arrs[idx][starts[idx] : starts[idx] + needed]
            if chunk.size < needed:
                tel.count("zigbee.rx.drop.TruncatedFrameError")
                if on_error == "raise":
                    raise TruncatedFrameError(
                        "waveform too short for requested chips"
                    )
                continue
            rows.append(chunk)
            kept.append(idx)
        if not rows:
            return np.empty((0, needed), dtype=np.complex128), kept
        return np.stack(rows), kept

    def _synchronise(self, waveform: np.ndarray) -> int:
        """Find the frame start by correlating against the zero symbol.

        The preamble is eight repetitions of data symbol 0's chip sequence;
        one modulated symbol is used as the sync reference.  The reference
        is split into :data:`_SYNC_SEGMENT_SAMPLES`-sample segments whose
        correlation magnitudes combine non-coherently, so a carrier
        frequency offset — which rotates the phase across the symbol and
        collapses a fully coherent correlation — only attenuates each short
        segment slightly.  On an offset-free channel the peak value is
        unchanged (all segment correlations align in phase at the true
        start).
        """
        from repro.zigbee.oqpsk import modulate_chips

        ref = modulate_chips(chip_table()[0])
        ref = ref[: CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP]
        if waveform.size < ref.size:
            raise SynchronizationError("waveform shorter than one symbol")
        n_valid = waveform.size - ref.size + 1
        corr = np.zeros(n_valid)
        for seg in range(0, ref.size, _SYNC_SEGMENT_SAMPLES):
            seg_corr = np.correlate(
                waveform[seg:], ref[seg : seg + _SYNC_SEGMENT_SAMPLES], mode="valid"
            )
            corr += np.abs(seg_corr[:n_valid])
        energy = np.sqrt(
            np.convolve(np.abs(waveform) ** 2, np.ones(ref.size), mode="valid")
        )
        ref_energy = float(np.sqrt(np.sum(np.abs(ref) ** 2)))
        with np.errstate(divide="ignore", invalid="ignore"):
            metric = np.where(energy > 0, corr / (energy * ref_energy), 0.0)
        strong = np.flatnonzero(metric >= self.sync_threshold)
        if strong.size == 0:
            best = float(metric.max()) if metric.size else 0.0
            raise SynchronizationError(f"no preamble found (best metric {best:.3f})")
        # The earliest threshold crossing is the start of the first preamble
        # symbol; refine to the strongest sample within one symbol period.
        first = int(strong[0])
        period = ref.size
        window_end = min(first + period // 2, metric.size)
        peak = first + int(np.argmax(metric[first:window_end]))
        return peak

    @staticmethod
    def estimate_cfo(waveform: np.ndarray, start_sample: int) -> float:
        """Carrier-frequency-offset estimate from the preamble, in Hz.

        Data-aided two-stage estimator against the known preamble (eight
        symbol-0 repetitions).  Each stage correlates the received preamble
        against the clean reference in segments; the phase advance between
        consecutive segment correlations is ``2*pi*f*L/fs``.  The coarse
        stage (L = 16 samples) is unambiguous to +-fs/2L = +-250 kHz —
        beyond the +-100 kHz a 2.4 GHz 802.15.4 crystal pair (+-40 ppm) can
        produce; the fine stage (L = one symbol, 128 samples) refines the
        residual within its +-31 kHz window.
        """
        ref = _preamble_reference()
        x = np.asarray(waveform, dtype=np.complex128).ravel()[
            start_sample : start_sample + ref.size
        ]
        span = (x.size // _SYMBOL_SAMPLES) * _SYMBOL_SAMPLES
        if span < 2 * _SYMBOL_SAMPLES:
            return 0.0
        x = x[:span]
        r = ref[:span]
        total = 0.0
        for lag in (_SYNC_SEGMENT_SAMPLES, _SYMBOL_SAMPLES):
            n_seg = span // lag
            q = np.sum(
                x[: n_seg * lag].reshape(n_seg, lag)
                * np.conj(r[: n_seg * lag].reshape(n_seg, lag)),
                axis=1,
            )
            pairs = np.sum(q[1:] * np.conj(q[:-1]))
            if np.abs(pairs) < 1e-30:
                continue
            delta = float(np.angle(pairs)) / (2 * np.pi * lag) * SAMPLE_RATE_HZ
            total += delta
            x = x * np.exp(
                -2j * np.pi * delta * np.arange(span) / SAMPLE_RATE_HZ
            )
        return total

    @staticmethod
    def _correct_cfo(arr: np.ndarray, start: int) -> np.ndarray:
        """De-rotate a frame's CFO and align its constant carrier phase.

        The O-QPSK matched filter reads the I and Q rails separately, so a
        residual constant phase mixes the rails; after removing the
        estimated frequency offset, the remaining phase is measured by one
        coherent correlation against the clean preamble and removed too.
        Both corrections are skipped when negligible, leaving clean frames
        bit-identical to the uncorrected path.
        """
        cfo_hz = ZigbeeReceiver.estimate_cfo(arr, start)
        if abs(cfo_hz) > 1.0:
            n = np.arange(arr.size)
            arr = arr * np.exp(-2j * np.pi * cfo_hz * n / SAMPLE_RATE_HZ)
        ref = _preamble_reference()
        chunk = arr[start : start + ref.size]
        if chunk.size == ref.size:
            corr = np.sum(chunk * np.conj(ref))
            phase = float(np.angle(corr)) if np.abs(corr) > 1e-30 else 0.0
            if abs(phase) > 1e-6:
                arr = arr * np.exp(-1j * phase)
        return arr


def decode_frames(waveforms: Sequence[np.ndarray]) -> List[bytes]:
    """Batch-decode O-QPSK waveforms straight to PSDU octet strings.

    A full-buffer adapter over the streaming core: each capture goes
    through :func:`repro.zigbee.streaming.sync_capture` as one chunk,
    then the exact-length frame windows batch-decode through
    :meth:`ZigbeeReceiver.receive_frames` (which still groups equal chip
    counts into one matched-filter/DSSS pass).  The first frame per
    capture is returned, in input order; a capture with no decodable
    frame raises its typed drop cause.
    """
    from repro.zigbee.streaming import sync_capture

    windows: List[np.ndarray] = []
    for waveform in waveforms:
        found, drops = sync_capture(waveform)
        if not found:
            if drops:
                raise drops[0].error
            raise SynchronizationError("no 802.15.4 preamble found in capture")
        windows.append(found[0].window)
    receiver = ZigbeeReceiver()
    receptions = receiver.receive_frames(windows, [0] * len(windows))
    return [rx.frame.psdu for rx in receptions]
