"""The sixteen 32-chip PN sequences of the 802.15.4 O-QPSK PHY.

Each 4-bit data symbol is spread to one of sixteen nearly-orthogonal 32-chip
sequences (IEEE 802.15.4-2015 Table 12-1).  Symbols 1-7 are 4-chip cyclic
shifts of symbol 0; symbols 8-15 repeat 0-7 with the odd-indexed (Q) chips
inverted.  Their large mutual Hamming distance is the processing gain that
lets ZigBee tolerate partial-band interference — the property the paper
invokes when arguing a full-power pilot inside the channel does not break
reception (Section IV-E).

The chip matrices themselves are owned by :mod:`repro.dsp.dsss` (shared with
the batched correlation kernels); this module keeps the symbol-at-a-time
helpers.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

import numpy as np

from repro.dsp.dsss import bipolar_table, chip_table, correlate_batch
from repro.errors import ConfigurationError

__all__ = [
    "chip_table",
    "chips_for_symbol",
    "bipolar_table",
    "min_hamming_distance",
    "correlate_symbol",
]


def chips_for_symbol(symbol: int) -> np.ndarray:
    """The 32-chip sequence of one data symbol (0..15)."""
    if not 0 <= symbol <= 15:
        raise ConfigurationError(f"data symbol must be 0..15, got {symbol}")
    return chip_table()[symbol].copy()


@lru_cache(maxsize=1)
def min_hamming_distance() -> int:
    """Minimum pairwise Hamming distance across the sixteen sequences."""
    table = chip_table()
    best = 32
    for a in range(16):
        for b in range(a + 1, 16):
            best = min(best, int(np.count_nonzero(table[a] != table[b])))
    return best


def correlate_symbol(chips: np.ndarray) -> Tuple[int, float]:
    """Pick the most likely data symbol from 32 soft chip values.

    Args:
        chips: real-valued chip estimates (positive means chip 1).

    Returns ``(symbol, score)`` where score is the normalised correlation
    of the winning sequence (1.0 = perfect match).
    """
    arr = np.asarray(chips, dtype=np.float64).ravel()
    if arr.size != 32:
        raise ConfigurationError(f"need 32 chips, got {arr.size}")
    symbols, scores = correlate_batch(arr)
    return int(symbols[0]), float(scores[0])
