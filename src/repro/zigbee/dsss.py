"""DSSS spreading and despreading for the 802.15.4 PHY.

Octets are split into nibbles (low nibble first per the standard); each
nibble is spread to its 32-chip PN sequence.  Despreading correlates
received (possibly corrupted) chips against all sixteen sequences and takes
the maximum — this is where the processing gain against partial-band and
burst interference comes from.

The chip tables and the matrix-product correlation kernel live in
:mod:`repro.dsp.dsss`; these wrappers keep the stream-in/stream-out scalar
signatures.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.dsp import dsss as _dsp
from repro.utils.bits import BitsLike, as_bits


def bits_to_symbols(bits: BitsLike) -> np.ndarray:
    """Group a bit stream (LSB-first nibbles) into data symbols 0..15."""
    return np.asarray(_dsp.bits_to_symbols(as_bits(bits)), dtype=np.int64)


def symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bits_to_symbols`."""
    arr = np.asarray(symbols, dtype=np.int64).ravel()
    return _dsp.symbols_to_bits(arr)


def spread(bits: BitsLike) -> np.ndarray:
    """Spread data bits to the chip stream (32 chips per nibble)."""
    return _dsp.spread_batch(as_bits(bits))


def despread(chips: np.ndarray) -> Tuple[np.ndarray, List[float]]:
    """Correlate a chip stream back to data bits.

    Args:
        chips: hard (0/1) or soft (real, positive = 1) chip values whose
            length is a whole number of 32-chip symbols.

    Returns ``(bits, scores)`` with one normalised correlation score per
    symbol — a reception-quality trace used by tests and the receiver's
    confidence threshold.
    """
    arr = np.asarray(chips, dtype=np.float64).ravel()
    bits, scores = _dsp.despread_batch(arr)
    return bits, [float(s) for s in scores]
