"""DSSS spreading and despreading for the 802.15.4 PHY.

Octets are split into nibbles (low nibble first per the standard); each
nibble is spread to its 32-chip PN sequence.  Despreading correlates
received (possibly corrupted) chips against all sixteen sequences and takes
the maximum — this is where the processing gain against partial-band and
burst interference comes from.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import DecodingError, EncodingError
from repro.utils.bits import BitsLike, as_bits
from repro.zigbee.chips import chip_table, correlate_symbol
from repro.zigbee.params import BITS_PER_SYMBOL, CHIPS_PER_SYMBOL


def bits_to_symbols(bits: BitsLike) -> np.ndarray:
    """Group a bit stream (LSB-first nibbles) into data symbols 0..15."""
    arr = as_bits(bits)
    if arr.size % BITS_PER_SYMBOL:
        raise EncodingError(
            f"{arr.size} bits do not form whole {BITS_PER_SYMBOL}-bit symbols"
        )
    groups = arr.reshape(-1, BITS_PER_SYMBOL)
    weights = 1 << np.arange(BITS_PER_SYMBOL)  # b0 is the LSB
    return (groups @ weights).astype(np.int64)


def symbols_to_bits(symbols: np.ndarray) -> np.ndarray:
    """Inverse of :func:`bits_to_symbols`."""
    arr = np.asarray(symbols, dtype=np.int64).ravel()
    if arr.size and (arr.min() < 0 or arr.max() > 15):
        raise EncodingError("data symbols must be 0..15")
    out = np.empty((arr.size, BITS_PER_SYMBOL), dtype=np.uint8)
    for bit in range(BITS_PER_SYMBOL):
        out[:, bit] = (arr >> bit) & 1
    return out.ravel()


def spread(bits: BitsLike) -> np.ndarray:
    """Spread data bits to the chip stream (32 chips per nibble)."""
    symbols = bits_to_symbols(bits)
    table = chip_table()
    return table[symbols].reshape(-1).astype(np.uint8)


def despread(chips: np.ndarray) -> Tuple[np.ndarray, List[float]]:
    """Correlate a chip stream back to data bits.

    Args:
        chips: hard (0/1) or soft (real, positive = 1) chip values whose
            length is a whole number of 32-chip symbols.

    Returns ``(bits, scores)`` with one normalised correlation score per
    symbol — a reception-quality trace used by tests and the receiver's
    confidence threshold.
    """
    arr = np.asarray(chips, dtype=np.float64).ravel()
    if arr.size % CHIPS_PER_SYMBOL:
        raise DecodingError(
            f"{arr.size} chips do not form whole {CHIPS_PER_SYMBOL}-chip symbols"
        )
    if arr.size and arr.min() >= 0.0 and arr.max() <= 1.0:
        arr = arr * 2.0 - 1.0  # hard chips -> bipolar
    symbols = []
    scores: List[float] = []
    for i in range(arr.size // CHIPS_PER_SYMBOL):
        chunk = arr[i * CHIPS_PER_SYMBOL : (i + 1) * CHIPS_PER_SYMBOL]
        symbol, score = correlate_symbol(chunk)
        symbols.append(symbol)
        scores.append(score)
    return symbols_to_bits(np.array(symbols, dtype=np.int64)), scores
