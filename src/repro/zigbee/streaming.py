"""Streaming 802.15.4 receive front end (chunked, constant memory).

Mirrors :mod:`repro.wifi.streaming` for the ZigBee chain:

* :class:`ZigbeeSyncStage` — incremental preamble correlation over a
  bounded :class:`~repro.streaming.ring.SampleRing`, a 12-symbol header
  despread to learn the PHR length, and exact-length frame windows cut
  out of the stream;
* :class:`ZigbeeDecodeStage` — each window decoded through the standard
  :class:`~repro.zigbee.receiver.ZigbeeReceiver` batch chain.

The legacy :meth:`~repro.zigbee.receiver.ZigbeeReceiver._synchronise`
rule — earliest threshold crossing, refined to the strongest metric
within half a symbol — is already local, so the streaming stage computes
the *same* metric at the *same* absolute positions and locks to the same
sample for any chunking of the capture.  The despread is symbol-local
(matched filter + per-symbol PN correlation), so decoding an
exact-length window is bit-identical to the legacy despread-everything-
available path.

A frame whose last sample coincides with the end of the capture decodes
normally at ``flush()``; a frame whose tail is genuinely missing is
surfaced as a typed :class:`~repro.errors.TruncatedFrameError` drop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Tuple

import numpy as np

from repro import telemetry
from repro.dsp.dsss import despread_batch
from repro.dsp.oqpsk import demodulate_chips_batch
from repro.errors import (
    DecodingError,
    InvalidWaveformError,
    ReproError,
    StreamOverflowError,
    TruncatedFrameError,
)
from repro.streaming.ring import SampleRing
from repro.streaming.stage import DropEvent, FrameEvent, StreamPipeline
from repro.utils.bits import bits_to_bytes
from repro.zigbee.chips import chip_table
from repro.zigbee.params import (
    BITS_PER_SYMBOL,
    CHIPS_PER_SYMBOL,
    PREAMBLE_SYMBOLS,
    SAMPLES_PER_CHIP,
    SFD_OCTET,
)
from repro.zigbee.receiver import (
    _SYNC_SEGMENT_SAMPLES,
    ZigbeeReceiver,
    ZigbeeReception,
)

__all__ = [
    "ZigbeeFrameWindow",
    "ZigbeeSyncStage",
    "ZigbeeDecodeStage",
    "ZigbeeStreamReceiver",
    "DEFAULT_RING_CAPACITY",
]

#: Samples of one despread symbol (32 chips at 4 samples/chip).
_SYMBOL_SAMPLES: int = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP

#: Header symbols that must despread before the frame length is known:
#: SHR (8 preamble + 2 SFD) + PHR (2).
_HEADER_SYMBOLS: int = PREAMBLE_SYMBOLS + 2 + 2

#: Metric positions examined after a threshold crossing (half a symbol,
#: the legacy ``_synchronise`` refinement window).
_REFINE_WINDOW: int = _SYMBOL_SAMPLES // 2

#: Default ring capacity: the longest frame (127-octet PSDU, ~34k
#: samples) plus headroom, as a power of two.
DEFAULT_RING_CAPACITY: int = 1 << 16

#: States of the sync machine.
_SEARCH, _CONFIRM, _WANT_HEADER, _WANT_FRAME = range(4)


def _samples_for_chips(n_chips: int) -> int:
    """Samples the matched filter reads to demodulate *n_chips* chips.

    ``demodulate_chips_batch`` reads half-pulse pairs plus one trailing
    Q-rail offset: ``n_chips * 4 + 4`` samples.
    """
    from repro.dsp.oqpsk import PULSE_SAMPLES

    return (n_chips // 2) * PULSE_SAMPLES + SAMPLES_PER_CHIP


def _sync_reference() -> np.ndarray:
    """One modulated symbol-0 (the legacy sync correlator's reference)."""
    from repro.zigbee.oqpsk import modulate_chips

    return modulate_chips(chip_table()[0])[:_SYMBOL_SAMPLES]


def _sync_metric(arr: np.ndarray, ref: np.ndarray) -> np.ndarray:
    """The segmented, CFO-tolerant sync metric of ``_synchronise``.

    Position-local (each value reads exactly ``ref.size`` samples), so a
    slice of the stream evaluates bit-identically to the full capture.
    """
    n_valid = arr.size - ref.size + 1
    if n_valid <= 0:
        return np.zeros(0)
    corr = np.zeros(n_valid)
    for seg in range(0, ref.size, _SYNC_SEGMENT_SAMPLES):
        seg_corr = np.correlate(
            arr[seg:], ref[seg : seg + _SYNC_SEGMENT_SAMPLES], mode="valid"
        )
        corr += np.abs(seg_corr[:n_valid])
    energy = np.sqrt(np.convolve(np.abs(arr) ** 2, np.ones(ref.size), mode="valid"))
    ref_energy = float(np.sqrt(np.sum(np.abs(ref) ** 2)))
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(energy > 0, corr / (energy * ref_energy), 0.0)


def _parse_header_bits(bits: np.ndarray) -> int:
    """PSDU length from 12 despread header symbols (48 bits).

    Same acceptance rules as :func:`repro.zigbee.frame.parse_ppdu_bits`:
    up to three corrupt preamble symbols tolerated, SFD exact.
    """
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    header = PREAMBLE_SYMBOLS * BITS_PER_SYMBOL
    preamble_symbols = arr[:header].reshape(PREAMBLE_SYMBOLS, BITS_PER_SYMBOL)
    bad = int(np.count_nonzero(preamble_symbols.any(axis=1)))
    if bad > 3:
        raise DecodingError(
            f"{bad} of {PREAMBLE_SYMBOLS} preamble symbols corrupted (tolerance 3)"
        )
    sfd = bits_to_bytes(arr[header : header + 8])[0]
    if sfd != SFD_OCTET:
        raise DecodingError(f"SFD mismatch: got {sfd:#04x}, want {SFD_OCTET:#04x}")
    return bits_to_bytes(arr[header + 8 : header + 16])[0] & 0x7F


@dataclass
class ZigbeeFrameWindow:
    """One fully buffered ZigBee frame, cut to its exact announced length.

    Attributes:
        start_sample: absolute stream index of the frame's first sample.
        window: the samples (an owned copy), exactly the announced frame.
        psdu_octets: PHR length decoded by the header probe.
    """

    start_sample: int
    window: np.ndarray
    psdu_octets: int


class ZigbeeSyncStage:
    """Incremental preamble search + PHR length probe + window cutter."""

    name = "sync"

    def __init__(
        self,
        threshold: float = 0.5,
        capacity: int = DEFAULT_RING_CAPACITY,
        ring_name: str = "zigbee",
    ) -> None:
        self.threshold = threshold
        self.ring = SampleRing(capacity, name=ring_name)
        self._ref = _sync_reference()
        self._state = _SEARCH
        self._search_pos = 0
        self._candidate = 0  # threshold-crossing position (CONFIRM)
        self._frame_start = 0  # refined peak (WANT_HEADER/WANT_FRAME)
        self._frame_end = 0
        self._psdu_octets = 0

    def _drop(self, error: ReproError, at: int) -> DropEvent:
        telemetry.current().count(f"zigbee.stream.drop.{type(error).__name__}")
        return DropEvent(start_sample=at, stage=self.name, error=error)

    def _resume_search(self, at: int) -> None:
        self._state = _SEARCH
        self._search_pos = at
        self.ring.release(at)

    def push(self, chunk: np.ndarray) -> List[Any]:
        """Ingest one chunk (any size) and emit what it completes."""
        arr = np.asarray(chunk, dtype=np.complex128).ravel()
        events: List[Any] = []
        pos = 0
        while pos < arr.size:
            free = self.ring.capacity - self.ring.occupancy
            if free == 0:
                events.append(
                    self._drop(
                        StreamOverflowError(
                            f"pending frame needs more than the ring's "
                            f"{self.ring.capacity}-sample bound"
                        ),
                        self._frame_start,
                    )
                )
                self._resume_search(self.ring.end)
                free = self.ring.capacity - self.ring.occupancy
            take = min(free, arr.size - pos)
            self.ring.append(arr[pos : pos + take])
            pos += take
            events.extend(self._advance(final=False))
        return events

    def flush(self) -> List[Any]:
        """End of stream: a frame ending exactly here still decodes; a
        missing tail becomes a :class:`TruncatedFrameError` drop."""
        events = list(self._advance(final=True))
        if self._state in (_WANT_HEADER, _WANT_FRAME):
            needed = (
                self._frame_end
                if self._state == _WANT_FRAME
                else self._frame_start + _samples_for_chips(
                    _HEADER_SYMBOLS * CHIPS_PER_SYMBOL
                )
            )
            events.append(
                self._drop(
                    TruncatedFrameError(
                        f"stream ended {needed - self.ring.end} samples short "
                        f"of the frame at {self._frame_start}"
                    ),
                    self._frame_start,
                )
            )
        self._resume_search(self.ring.end)
        return events

    def _advance(self, final: bool) -> Iterable[Any]:
        events: List[Any] = []
        ref_size = self._ref.size
        header_samples = _samples_for_chips(_HEADER_SYMBOLS * CHIPS_PER_SYMBOL)
        while True:
            end = self.ring.end
            if self._state == _SEARCH:
                evaluable = end - ref_size + 1
                if evaluable <= self._search_pos:
                    return events
                metric = _sync_metric(
                    self.ring.view(self._search_pos, end), self._ref
                )
                hits = metric >= self.threshold
                if not hits.any():
                    self._search_pos = evaluable
                    self.ring.release(self._search_pos)
                    return events
                self._candidate = self._search_pos + int(np.argmax(hits))
                self._search_pos = self._candidate
                self._state = _CONFIRM
            elif self._state == _CONFIRM:
                # Refine over [first, first + 64): need samples through
                # first + 63 + ref before committing (or a flushed tail).
                have_all = end >= self._candidate + _REFINE_WINDOW + ref_size - 1
                if not have_all and not final:
                    return events
                hi = min(self._candidate + _REFINE_WINDOW + ref_size - 1, end)
                metric = _sync_metric(self.ring.view(self._candidate, hi), self._ref)
                if metric.size == 0:
                    return events
                self._frame_start = self._candidate + int(np.argmax(metric))
                self._state = _WANT_HEADER
            elif self._state == _WANT_HEADER:
                needed = self._frame_start + header_samples
                if end < needed:
                    return events  # flush() emits the truncation drop
                segment = self.ring.view(self._frame_start, needed)
                soft = demodulate_chips_batch(
                    segment[np.newaxis, :], _HEADER_SYMBOLS * CHIPS_PER_SYMBOL
                )
                bits, _scores = despread_batch(soft)
                try:
                    self._psdu_octets = _parse_header_bits(bits[0])
                except ReproError as exc:
                    events.append(self._drop(exc, self._frame_start))
                    # Skip one symbol past the false lock and search on.
                    self._resume_search(self._frame_start + _SYMBOL_SAMPLES)
                    continue
                n_chips = (_HEADER_SYMBOLS + 2 * self._psdu_octets) * CHIPS_PER_SYMBOL
                self._frame_end = self._frame_start + _samples_for_chips(n_chips)
                if self._frame_end - self._frame_start > self.ring.capacity:
                    events.append(
                        self._drop(
                            StreamOverflowError(
                                f"frame of {self._frame_end - self._frame_start} "
                                f"samples exceeds the {self.ring.capacity}-sample "
                                f"ring bound"
                            ),
                            self._frame_start,
                        )
                    )
                    self._resume_search(self._frame_start + _SYMBOL_SAMPLES)
                    continue
                self._state = _WANT_FRAME
            elif self._state == _WANT_FRAME:
                if end < self._frame_end:
                    return events  # flush() emits the truncation drop
                telemetry.current().count("zigbee.stream.frames")
                events.append(
                    ZigbeeFrameWindow(
                        start_sample=self._frame_start,
                        window=np.array(
                            self.ring.view(self._frame_start, self._frame_end)
                        ),
                        psdu_octets=self._psdu_octets,
                    )
                )
                self._resume_search(self._frame_end)


def sync_capture(
    waveform: np.ndarray,
    threshold: float = 0.5,
    capacity: int = DEFAULT_RING_CAPACITY,
) -> Tuple[List[ZigbeeFrameWindow], List[DropEvent]]:
    """Streaming sync over one full capture (the one-chunk push).

    The full-buffer adapter's core: the classic ``decode_frames`` runs
    this per capture, then batch-decodes the collected windows.  A capture
    of NaN/Inf samples is reported as an
    :class:`~repro.errors.InvalidWaveformError` drop, matching the batch
    receiver's front-end check.
    """
    stage = ZigbeeSyncStage(threshold=threshold, capacity=capacity)
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    if not np.all(np.isfinite(arr)):
        error = InvalidWaveformError("waveform contains NaN or Inf samples")
        return [], [stage._drop(error, 0)]
    events = list(stage.push(arr)) + list(stage.flush())
    windows = [e for e in events if isinstance(e, ZigbeeFrameWindow)]
    drops = [e for e in events if isinstance(e, DropEvent)]
    return windows, drops


class ZigbeeDecodeStage:
    """Decode each :class:`ZigbeeFrameWindow` through the standard chain."""

    name = "decode"

    def __init__(self, correct_cfo: bool = False) -> None:
        self._receiver = ZigbeeReceiver()
        self._correct_cfo = correct_cfo

    def push(self, item: Any) -> List[Any]:
        if not isinstance(item, ZigbeeFrameWindow):
            return [item]
        try:
            reception = self._receiver.receive_frames(
                [item.window], [0], correct_cfo=self._correct_cfo
            )[0]
        except ReproError as exc:
            telemetry.current().count(f"zigbee.stream.drop.{type(exc).__name__}")
            return [
                DropEvent(
                    start_sample=item.start_sample, stage=self.name, error=exc
                )
            ]
        return [FrameEvent(start_sample=item.start_sample, result=reception)]

    def flush(self) -> List[Any]:
        return []


class ZigbeeStreamReceiver:
    """Chunked 802.15.4 receiver: push sample chunks, collect receptions."""

    def __init__(
        self,
        sync_threshold: float = 0.5,
        capacity: int = DEFAULT_RING_CAPACITY,
        correct_cfo: bool = False,
    ) -> None:
        self.sync = ZigbeeSyncStage(threshold=sync_threshold, capacity=capacity)
        self.pipeline = StreamPipeline(
            [self.sync, ZigbeeDecodeStage(correct_cfo=correct_cfo)],
            "zigbee.stream",
        )

    def push(self, chunk: np.ndarray) -> List[Any]:
        """Feed one chunk; returns the events it completed."""
        return self.pipeline.push(chunk)

    def flush(self) -> List[Any]:
        """End the stream; returns the final events."""
        return self.pipeline.flush()

    def receive_stream(
        self, chunks: Iterable[np.ndarray]
    ) -> Tuple[List[ZigbeeReception], List[DropEvent]]:
        """Convenience: run a whole chunk iterator, split the outcome."""
        events = self.pipeline.run(chunks)
        frames = [e.result for e in events if isinstance(e, FrameEvent)]
        drops = [e for e in events if isinstance(e, DropEvent)]
        return frames, drops
