"""ZigBee transmitter: PSDU octets -> DSSS chips -> O-QPSK waveform."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.dsp.dsss import spread_batch
from repro.dsp.oqpsk import modulate_chips_batch
from repro.zigbee.frame import ZigbeeFrame, build_ppdu_bits


@dataclass
class ZigbeeTransmission:
    """A transmitted ZigBee frame.

    Attributes:
        frame: the framing metadata (PSDU, durations).
        chips: the full chip stream.
        waveform: complex baseband samples at
            :data:`repro.zigbee.params.SAMPLE_RATE_HZ`.
    """

    frame: ZigbeeFrame
    chips: np.ndarray
    waveform: np.ndarray

    @property
    def duration_us(self) -> float:
        """On-air duration in microseconds."""
        return self.frame.duration_us


class ZigbeeTransmitter:
    """Builds standard 802.15.4 waveforms from payload octets."""

    def send(self, psdu: bytes) -> ZigbeeTransmission:
        """Frame, spread and modulate *psdu*."""
        return self.send_frames([psdu])[0]

    def send_frames(self, psdus: Sequence[bytes]) -> List[ZigbeeTransmission]:
        """Frame, spread and modulate many PSDUs, batching equal lengths.

        Equal-length payloads are spread and O-QPSK-modulated as one batch
        through the :mod:`repro.dsp` kernels; results keep input order.
        """
        bit_streams = [build_ppdu_bits(psdu) for psdu in psdus]
        groups: Dict[int, List[int]] = {}
        for idx, bits in enumerate(bit_streams):
            groups.setdefault(bits.size, []).append(idx)
        out: List[Optional[ZigbeeTransmission]] = [None] * len(psdus)
        for indices in groups.values():
            stacked = np.stack([bit_streams[i] for i in indices])
            chips = spread_batch(stacked)
            waveforms = modulate_chips_batch(chips)
            for row, idx in enumerate(indices):
                out[idx] = ZigbeeTransmission(
                    frame=ZigbeeFrame(psdu=bytes(psdus[idx])),
                    chips=chips[row],
                    waveform=waveforms[row],
                )
        return out  # type: ignore[return-value]


def encode_frames(psdus: Sequence[bytes]) -> List[np.ndarray]:
    """Batch-encode PSDU octet strings straight to O-QPSK waveforms.

    Thin convenience over :meth:`ZigbeeTransmitter.send_frames` returning
    just the complex baseband waveforms, in input order.
    """
    return [tx.waveform for tx in ZigbeeTransmitter().send_frames(psdus)]
