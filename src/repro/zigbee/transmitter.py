"""ZigBee transmitter: PSDU octets -> DSSS chips -> O-QPSK waveform."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.zigbee.dsss import spread
from repro.zigbee.frame import ZigbeeFrame, build_ppdu_bits
from repro.zigbee.oqpsk import modulate_chips


@dataclass
class ZigbeeTransmission:
    """A transmitted ZigBee frame.

    Attributes:
        frame: the framing metadata (PSDU, durations).
        chips: the full chip stream.
        waveform: complex baseband samples at
            :data:`repro.zigbee.params.SAMPLE_RATE_HZ`.
    """

    frame: ZigbeeFrame
    chips: np.ndarray
    waveform: np.ndarray

    @property
    def duration_us(self) -> float:
        """On-air duration in microseconds."""
        return self.frame.duration_us


class ZigbeeTransmitter:
    """Builds standard 802.15.4 waveforms from payload octets."""

    def send(self, psdu: bytes) -> ZigbeeTransmission:
        """Frame, spread and modulate *psdu*."""
        bits = build_ppdu_bits(psdu)
        chips = spread(bits)
        waveform = modulate_chips(chips)
        return ZigbeeTransmission(
            frame=ZigbeeFrame(psdu=bytes(psdu)),
            chips=chips,
            waveform=waveform,
        )
