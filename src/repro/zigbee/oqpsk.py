"""Half-sine-shaped O-QPSK modulation (802.15.4 2.4 GHz PHY).

Even-indexed chips modulate the I rail and odd-indexed chips the Q rail;
each rail sends one half-sine pulse of duration 2 Tc per chip, with the Q
rail offset by one chip period Tc.  The offset keeps the envelope nearly
constant — the modulation property that lets cheap ZigBee PAs run near
saturation.

The demodulator is a matched filter per rail sampled at pulse centres,
returning *soft* chip values so the DSSS despreader keeps its full
processing gain under interference.

The vectorized rail assembly and matched filter are
:func:`repro.dsp.oqpsk.modulate_chips_batch` /
:func:`repro.dsp.oqpsk.demodulate_chips_batch`; these wrappers keep the
one-stream signatures.
"""

from __future__ import annotations

import numpy as np

from repro.dsp.oqpsk import (
    demodulate_chips_batch,
    half_sine_pulse,
    modulate_chips_batch,
)

__all__ = ["half_sine_pulse", "modulate_chips", "demodulate_chips"]


def modulate_chips(chips: np.ndarray) -> np.ndarray:
    """O-QPSK modulate a chip stream (even number of chips) to IQ samples.

    The output has ``SAMPLES_PER_CHIP`` samples per chip plus one trailing
    pulse tail (the Q rail's offset).
    """
    arr = np.asarray(chips, dtype=np.float64).ravel()
    return modulate_chips_batch(arr)


def demodulate_chips(waveform: np.ndarray, n_chips: int) -> np.ndarray:
    """Matched-filter demodulation back to soft chip values.

    Args:
        waveform: IQ samples as produced by :func:`modulate_chips` (plus
            any additive impairments), starting at the first I pulse.
        n_chips: number of chips to recover (even).

    Returns bipolar soft chip estimates (positive means chip value 1).
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    return demodulate_chips_batch(arr, n_chips)
