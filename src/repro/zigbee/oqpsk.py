"""Half-sine-shaped O-QPSK modulation (802.15.4 2.4 GHz PHY).

Even-indexed chips modulate the I rail and odd-indexed chips the Q rail;
each rail sends one half-sine pulse of duration 2 Tc per chip, with the Q
rail offset by one chip period Tc.  The offset keeps the envelope nearly
constant — the modulation property that lets cheap ZigBee PAs run near
saturation.

The demodulator is a matched filter per rail sampled at pulse centres,
returning *soft* chip values so the DSSS despreader keeps its full
processing gain under interference.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecodingError, EncodingError
from repro.zigbee.params import SAMPLES_PER_CHIP

#: Samples of one half-sine pulse (duration 2 Tc).
_PULSE_SAMPLES = 2 * SAMPLES_PER_CHIP


def half_sine_pulse() -> np.ndarray:
    """One half-sine pulse spanning two chip periods."""
    t = np.arange(_PULSE_SAMPLES, dtype=np.float64)
    return np.sin(np.pi * t / _PULSE_SAMPLES)


def modulate_chips(chips: np.ndarray) -> np.ndarray:
    """O-QPSK modulate a chip stream (even number of chips) to IQ samples.

    The output has ``SAMPLES_PER_CHIP`` samples per chip plus one trailing
    pulse tail (the Q rail's offset).
    """
    arr = np.asarray(chips, dtype=np.float64).ravel()
    if arr.size % 2:
        raise EncodingError("O-QPSK needs an even number of chips")
    bipolar = arr * 2.0 - 1.0 if arr.min() >= 0 else arr
    i_chips = bipolar[0::2]
    q_chips = bipolar[1::2]
    pulse = half_sine_pulse()
    n_pairs = i_chips.size
    total = n_pairs * _PULSE_SAMPLES + SAMPLES_PER_CHIP + _PULSE_SAMPLES
    i_rail = np.zeros(total, dtype=np.float64)
    q_rail = np.zeros(total, dtype=np.float64)
    for k in range(n_pairs):
        start = k * _PULSE_SAMPLES
        i_rail[start : start + _PULSE_SAMPLES] += i_chips[k] * pulse
        q_start = start + SAMPLES_PER_CHIP
        q_rail[q_start : q_start + _PULSE_SAMPLES] += q_chips[k] * pulse
    # Half-sine pulses on offset rails give sin^2 + cos^2 = 1: a constant
    # unit envelope (the MSK property), so no further normalisation.
    waveform = i_rail + 1j * q_rail
    # Trim the unused allocation tail: signal ends after the last Q pulse.
    end = (n_pairs - 1) * _PULSE_SAMPLES + SAMPLES_PER_CHIP + _PULSE_SAMPLES
    return waveform[:end]


def demodulate_chips(waveform: np.ndarray, n_chips: int) -> np.ndarray:
    """Matched-filter demodulation back to soft chip values.

    Args:
        waveform: IQ samples as produced by :func:`modulate_chips` (plus
            any additive impairments), starting at the first I pulse.
        n_chips: number of chips to recover (even).

    Returns bipolar soft chip estimates (positive means chip value 1).
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    if n_chips % 2:
        raise DecodingError("O-QPSK chip count must be even")
    pulse = half_sine_pulse()
    pulse_energy = float(np.sum(pulse**2))
    n_pairs = n_chips // 2
    soft = np.empty(n_chips, dtype=np.float64)
    for k in range(n_pairs):
        start = k * _PULSE_SAMPLES
        i_seg = arr[start : start + _PULSE_SAMPLES]
        if i_seg.size < _PULSE_SAMPLES:
            raise DecodingError("waveform too short for requested chips")
        soft[2 * k] = float(np.real(i_seg) @ pulse) / pulse_energy
        q_start = start + SAMPLES_PER_CHIP
        q_seg = arr[q_start : q_start + _PULSE_SAMPLES]
        if q_seg.size < _PULSE_SAMPLES:
            raise DecodingError("waveform too short for requested chips")
        soft[2 * k + 1] = float(np.imag(q_seg) @ pulse) / pulse_energy
    return soft
