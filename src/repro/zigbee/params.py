"""802.15.4 (2.4 GHz O-QPSK PHY) parameters and MAC timing constants.

Numbers the paper leans on: a ZigBee symbol lasts 16 us (62.5 ksym/s, four
bits per symbol -> 250 kbit/s), the CCA window is eight symbols = 128 us,
and the contention timing (320 us backoff periods) is what loses the channel
race against WiFi's 9/28 us slots (paper Sections II-B, IV-F).
"""

from __future__ import annotations

from repro.dsp.params import (
    BITS_PER_SYMBOL,
    CHIPS_PER_SYMBOL,
    SAMPLES_PER_CHIP,
)

#: Chip rate of the 2.4 GHz O-QPSK PHY.
CHIP_RATE_HZ: float = 2e6

#: Symbol rate: 2 Mchip/s / 32 chips = 62.5 ksym/s.
SYMBOL_RATE_HZ: float = CHIP_RATE_HZ / CHIPS_PER_SYMBOL

#: Symbol duration in microseconds (16 us).
SYMBOL_DURATION_US: float = 1e6 / SYMBOL_RATE_HZ

#: PHY data rate: 250 kbit/s.
DATA_RATE_BPS: float = SYMBOL_RATE_HZ * BITS_PER_SYMBOL

#: Baseband sample rate of generated ZigBee waveforms.
SAMPLE_RATE_HZ: float = CHIP_RATE_HZ * SAMPLES_PER_CHIP

#: Samples per O-QPSK symbol.
SAMPLES_PER_SYMBOL: int = CHIPS_PER_SYMBOL * SAMPLES_PER_CHIP

#: Preamble: eight zero symbols (32 zero bits), 128 us.
PREAMBLE_SYMBOLS: int = 8

#: Start-of-frame delimiter octet.
SFD_OCTET: int = 0xA7

#: Maximum PSDU size in octets (7-bit PHR length field).
MAX_PSDU_OCTETS: int = 127

#: CCA duration: eight symbol periods (128 us), per IEEE 802.15.4.
CCA_DURATION_US: float = 8 * SYMBOL_DURATION_US

#: Unit backoff period: 20 symbols = 320 us (the paper's "ZigBee backoff slot").
BACKOFF_PERIOD_US: float = 20 * SYMBOL_DURATION_US

#: The paper's effective ZigBee DIFS (Section II-B): 320 us.
DIFS_US: float = 320.0

#: macMinBE / macMaxBE defaults of unslotted CSMA-CA.
MIN_BE: int = 3
MAX_BE: int = 5

#: macMaxCSMABackoffs default.
MAX_CSMA_BACKOFFS: int = 4

#: Default CC2420-style clear-channel threshold, in the paper's reported-dB
#: domain (see repro.channel.calibration).
CCA_THRESHOLD_DB: float = -77.0
