"""802.15.4 ZigBee PHY: DSSS spreading, O-QPSK modulation, framing, link model."""

from repro.zigbee.chips import (
    bipolar_table,
    chip_table,
    chips_for_symbol,
    correlate_symbol,
    min_hamming_distance,
)
from repro.zigbee.dsss import bits_to_symbols, despread, spread, symbols_to_bits
from repro.zigbee.frame import (
    ZigbeeFrame,
    build_ppdu_bits,
    frame_duration_us,
    parse_ppdu_bits,
)
from repro.zigbee.link_model import (
    chip_error_probability,
    packet_error_probability,
    q_function,
    sinr_threshold_db,
    symbol_error_probability,
)
from repro.zigbee.oqpsk import demodulate_chips, half_sine_pulse, modulate_chips
from repro.zigbee.params import (
    BACKOFF_PERIOD_US,
    BITS_PER_SYMBOL,
    CCA_DURATION_US,
    CCA_THRESHOLD_DB,
    CHIP_RATE_HZ,
    CHIPS_PER_SYMBOL,
    DATA_RATE_BPS,
    DIFS_US,
    MAX_PSDU_OCTETS,
    PREAMBLE_SYMBOLS,
    SAMPLE_RATE_HZ,
    SAMPLES_PER_CHIP,
    SFD_OCTET,
    SYMBOL_DURATION_US,
    SYMBOL_RATE_HZ,
)
from repro.zigbee.receiver import ZigbeeReceiver, ZigbeeReception, decode_frames
from repro.zigbee.streaming import (
    ZigbeeDecodeStage,
    ZigbeeFrameWindow,
    ZigbeeStreamReceiver,
    ZigbeeSyncStage,
    sync_capture,
)
from repro.zigbee.transmitter import (
    ZigbeeTransmission,
    ZigbeeTransmitter,
    encode_frames,
)

__all__ = [name for name in dir() if not name.startswith("_")]
