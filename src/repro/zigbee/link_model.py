"""Analytic ZigBee link model: symbol/packet error rates versus SINR.

The coexistence simulator needs a fast closed-form mapping from SINR to
reception outcome instead of simulating waveforms for every packet.  The
model follows the classic DSSS/O-QPSK analysis:

* chip-error probability  p_c = Q( sqrt(2 * SINR_chip) ) with
  SINR_chip = SINR (matched filter per chip, interference treated as
  Gaussian — conservative for OFDM interference, which is Gaussian-like);
* a data symbol is decoded by maximum correlation over 16 sequences with
  minimum Hamming distance d_min = 12; by the usual bounded-distance
  argument a symbol survives while fewer than d_min/2 chips are corrupted;
* a packet survives when every one of its symbols survives, with the
  preamble granted majority redundancy (the paper: "this sudden
  interference will not affect the detection of ZigBee preamble due to its
  redundancy design").

The binomial tail is computed exactly, so the SER curve has the sharp
threshold behaviour the paper's Fig. 14/15 crossovers exhibit.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb, erfc, sqrt

from repro.utils.db import db_to_linear
from repro.zigbee.chips import min_hamming_distance
from repro.zigbee.params import CHIPS_PER_SYMBOL


def q_function(x: float) -> float:
    """Gaussian tail probability Q(x)."""
    return 0.5 * erfc(x / sqrt(2.0))


def chip_error_probability(sinr_db: float) -> float:
    """Probability a single chip decision is wrong at the given SINR."""
    sinr = db_to_linear(sinr_db)
    return q_function(sqrt(2.0 * sinr))


@lru_cache(maxsize=4096)
def _symbol_error_cached(p_milli: int) -> float:
    """Symbol error probability for chip error rate p_milli/1e6."""
    p = p_milli / 1e6
    if p <= 0.0:
        return 0.0
    if p >= 0.5:
        return 1.0
    threshold = min_hamming_distance() // 2  # 6 for the 802.15.4 table
    survive = 0.0
    for errors in range(threshold):
        survive += (
            comb(CHIPS_PER_SYMBOL, errors)
            * p**errors
            * (1.0 - p) ** (CHIPS_PER_SYMBOL - errors)
        )
    return 1.0 - survive


def symbol_error_probability(sinr_db: float) -> float:
    """Probability one 32-chip data symbol is decoded wrongly."""
    p = chip_error_probability(sinr_db)
    return _symbol_error_cached(int(round(p * 1e6)))


def packet_error_probability(sinr_db: float, n_payload_symbols: int) -> float:
    """Probability a packet with *n_payload_symbols* symbols is lost."""
    ser = symbol_error_probability(sinr_db)
    if ser >= 1.0:
        return 1.0
    return 1.0 - (1.0 - ser) ** max(n_payload_symbols, 0)


def sinr_threshold_db(target_ser: float = 1e-3) -> float:
    """Smallest SINR (0.1 dB grid) with symbol error rate below target.

    Around 1-2 dB for the 802.15.4 DSSS — the processing gain that lets
    ZigBee decode under residual WiFi energy once SledZig pulls the
    interference down.
    """
    sinr = -10.0
    while sinr < 30.0:
        if symbol_error_probability(sinr) <= target_ser:
            return round(sinr, 1)
        sinr += 0.1
    return 30.0
