"""802.15.4 PPDU framing: SHR (preamble + SFD), PHR, PSDU.

The synchronisation header is eight zero symbols (128 us) followed by the
SFD octet 0xA7; the PHY header carries the 7-bit frame length.  The paper's
CCA/preamble timing arguments (Section IV-F) all stem from these sizes:
a ZigBee receiver needs the full 128 us preamble, while a WiFi preamble is
only 16 us — hence a WiFi preamble inside a ZigBee CCA window barely moves
the average, but one on top of a payload symbol kills that symbol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, DecodingError, TruncatedFrameError
from repro.utils.bits import bits_to_bytes, bytes_to_bits
from repro.zigbee.params import (
    BITS_PER_SYMBOL,
    MAX_PSDU_OCTETS,
    PREAMBLE_SYMBOLS,
    SFD_OCTET,
    SYMBOL_DURATION_US,
)


@dataclass(frozen=True)
class ZigbeeFrame:
    """One PHY frame.

    Attributes:
        psdu: payload octets.
    """

    psdu: bytes

    @property
    def n_symbols(self) -> int:
        """Total symbols on air: SHR (10) + PHR (2) + 2 per PSDU octet."""
        return PREAMBLE_SYMBOLS + 2 + 2 + 2 * len(self.psdu)

    @property
    def duration_us(self) -> float:
        """On-air duration in microseconds."""
        return self.n_symbols * SYMBOL_DURATION_US


def build_ppdu_bits(psdu: bytes) -> np.ndarray:
    """Serialise preamble + SFD + PHR + PSDU into the PHY bit stream."""
    if not 1 <= len(psdu) <= MAX_PSDU_OCTETS:
        raise ConfigurationError(
            f"PSDU must be 1..{MAX_PSDU_OCTETS} octets, got {len(psdu)}"
        )
    preamble = np.zeros(PREAMBLE_SYMBOLS * BITS_PER_SYMBOL, dtype=np.uint8)
    sfd = bytes_to_bits(bytes([SFD_OCTET]))
    phr = bytes_to_bits(bytes([len(psdu) & 0x7F]))
    payload = bytes_to_bits(psdu)
    return np.concatenate([preamble, sfd, phr, payload])


def parse_ppdu_bits(bits: np.ndarray, max_bad_preamble_symbols: int = 3) -> ZigbeeFrame:
    """Parse a PHY bit stream back into a frame (starting at the preamble).

    Up to *max_bad_preamble_symbols* of the eight preamble symbols may be
    corrupted — the redundancy the paper's Section IV-F relies on when a
    WiFi preamble lands on the ZigBee SHR.  The SFD and PHR must be exact.
    """
    arr = np.asarray(bits, dtype=np.uint8).ravel()
    header = PREAMBLE_SYMBOLS * BITS_PER_SYMBOL
    if arr.size < header + 16:
        raise DecodingError("bit stream shorter than SHR + PHR")
    preamble_symbols = arr[:header].reshape(PREAMBLE_SYMBOLS, BITS_PER_SYMBOL)
    bad = int(np.count_nonzero(preamble_symbols.any(axis=1)))
    if bad > max_bad_preamble_symbols:
        raise DecodingError(
            f"{bad} of {PREAMBLE_SYMBOLS} preamble symbols corrupted "
            f"(tolerance {max_bad_preamble_symbols})"
        )
    sfd = bits_to_bytes(arr[header : header + 8])[0]
    if sfd != SFD_OCTET:
        raise DecodingError(f"SFD mismatch: got {sfd:#04x}, want {SFD_OCTET:#04x}")
    length = bits_to_bytes(arr[header + 8 : header + 16])[0] & 0x7F
    start = header + 16
    end = start + 8 * length
    if arr.size < end:
        raise TruncatedFrameError(
            f"PHR announces {length} octets but the stream holds fewer bits"
        )
    return ZigbeeFrame(psdu=bits_to_bytes(arr[start:end]))


def frame_duration_us(psdu_octets: int) -> float:
    """On-air duration of a frame with *psdu_octets* of payload."""
    return ZigbeeFrame(psdu=bytes(psdu_octets)).duration_us
