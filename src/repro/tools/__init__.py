"""Maintenance tools (regeneration scripts, corpus management).

Run as modules, e.g. ``python -m repro.tools.regen_vectors``.
"""
