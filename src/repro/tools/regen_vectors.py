"""Regenerate the golden-vector regression corpus under ``tests/vectors/``.

Usage::

    python -m repro.tools.regen_vectors                 # refresh tests/vectors/
    python -m repro.tools.regen_vectors --outdir X      # write elsewhere
    python -m repro.tools.regen_vectors --manifest-only # re-describe, no rewrite

Each vector freezes one end-to-end artefact of the library — a WiFi
encode/decode roundtrip, a ZigBee chip/frame roundtrip, a SledZig insertion
output — as an ``.npz`` of the exact arrays, with a ``manifest.json``
recording how every file was produced.  ``tests/test_golden_vectors.py``
diffs the current code's output against the corpus, so any unintended
change to the bit chains or waveform synthesis fails loudly.

Regenerate (and commit the diff) only when an intentional change to the
chains makes the old vectors obsolete — the test failure message says so.
``--manifest-only`` rebuilds every vector in memory, *verifies* it is
bit-identical to the committed ``.npz`` (so the manifest can never drift
from the data), and rewrites only ``manifest.json`` — used when the
manifest schema gains fields (e.g. the kernel-backend provenance record)
without the vectors themselves changing.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict

import numpy as np

from repro import kernels
from repro.channel.batch import awgn_batch
from repro.impairments import (
    CarrierFrequencyOffset,
    ImpairmentPipeline,
    Multipath,
)
from repro.montecarlo import seeding
from repro.sledzig.channels import get_channel
from repro.sledzig.encoder import SledZigEncoder
from repro.sledzig.pipeline import SledZigTransmitter
from repro.utils.bits import bytes_to_bits, random_bits
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.transmitter import ZigbeeTransmitter

#: Master seed addressing every payload draw in the corpus.
CORPUS_SEED = 2022

#: Parameterisation of each frozen vector (also recorded in the manifest).
SPECS: Dict[str, Dict[str, Any]] = {
    "wifi_roundtrip": {"mcs": "qam64-2/3", "psdu_octets": 60},
    "zigbee_roundtrip": {"psdu_octets": 24},
    "sledzig_insertion": {"mcs": "qam64-2/3", "channel": "CH2", "payload_octets": 40},
    "impaired_wifi": {
        "mcs": "qpsk-1/2", "psdu_octets": 40,
        "cfo_hz": 97_600.0, "multipath_taps": 4, "snr_db": 15.0,
    },
    "impaired_zigbee": {"psdu_octets": 24, "cfo_hz": 97_600.0, "snr_db": 10.0},
}


def build_wifi_roundtrip() -> Dict[str, np.ndarray]:
    """A standard 802.11 frame: PSDU bits, scrambled field, waveform."""
    spec = SPECS["wifi_roundtrip"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/wifi_roundtrip", 0)
    psdu = random_bits(8 * spec["psdu_octets"], rng)
    frame = WifiTransmitter(spec["mcs"]).transmit(psdu)
    return {
        "psdu_bits": psdu,
        "scrambled_field": frame.scrambled_field,
        "waveform": frame.waveform,
    }


def build_zigbee_roundtrip() -> Dict[str, np.ndarray]:
    """An 802.15.4 frame: PSDU octets, chip stream, O-QPSK waveform."""
    spec = SPECS["zigbee_roundtrip"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/zigbee_roundtrip", 0)
    psdu = bytes(rng.integers(0, 256, size=spec["psdu_octets"], dtype=np.uint8))
    trans = ZigbeeTransmitter().send(psdu)
    return {
        "psdu": np.frombuffer(psdu, dtype=np.uint8),
        "chips": np.asarray(trans.chips, dtype=np.uint8),
        "waveform": trans.waveform,
    }


def build_sledzig_insertion() -> Dict[str, np.ndarray]:
    """A SledZig encode: payload, inserted stream, positions, waveform."""
    spec = SPECS["sledzig_insertion"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/sledzig_insertion", 0)
    payload = bytes(
        rng.integers(0, 256, size=spec["payload_octets"], dtype=np.uint8)
    )
    encoder = SledZigEncoder(spec["mcs"], get_channel(spec["channel"]))
    encoded = encoder.encode(bytes_to_bits(payload))
    packet = SledZigTransmitter(spec["mcs"], spec["channel"]).send(payload)
    return {
        "payload": np.frombuffer(payload, dtype=np.uint8),
        "stream": np.asarray(encoded.stream, dtype=np.uint8),
        "extra_positions": np.asarray(
            sorted(encoded.plan.extra_positions), dtype=np.int64
        ),
        "waveform": packet.waveform,
    }


def build_impaired_wifi() -> Dict[str, np.ndarray]:
    """A WiFi frame through CFO + 4-tap Rayleigh multipath + AWGN.

    Freezes the :mod:`repro.impairments` arithmetic end to end: the frame,
    the fading/noise draws (one addressed stream) and the impaired
    waveform the hardened receiver must still decode.
    """
    from repro.wifi.params import SAMPLE_RATE_HZ

    spec = SPECS["impaired_wifi"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/impaired_wifi", 0)
    psdu = random_bits(8 * spec["psdu_octets"], rng)
    frame = WifiTransmitter(spec["mcs"]).transmit(psdu)
    pipeline = ImpairmentPipeline((
        CarrierFrequencyOffset(spec["cfo_hz"], SAMPLE_RATE_HZ),
        Multipath(n_taps=spec["multipath_taps"], tap_spacing_samples=2),
    ))
    impaired = pipeline.apply_one(frame.waveform, rng)
    noisy = awgn_batch(impaired[np.newaxis, :], spec["snr_db"], [rng])[0]
    return {"psdu_bits": psdu, "waveform": noisy}


def build_impaired_zigbee() -> Dict[str, np.ndarray]:
    """A ZigBee frame through a 97.6 kHz CFO (40 ppm at 2.44 GHz) + AWGN."""
    from repro.zigbee.params import SAMPLE_RATE_HZ

    spec = SPECS["impaired_zigbee"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/impaired_zigbee", 0)
    psdu = bytes(rng.integers(0, 256, size=spec["psdu_octets"], dtype=np.uint8))
    trans = ZigbeeTransmitter().send(psdu)
    pipeline = ImpairmentPipeline(
        (CarrierFrequencyOffset(spec["cfo_hz"], SAMPLE_RATE_HZ),)
    )
    impaired = pipeline.apply_one(trans.waveform, rng)
    noisy = awgn_batch(impaired[np.newaxis, :], spec["snr_db"], [rng])[0]
    return {"psdu": np.frombuffer(psdu, dtype=np.uint8), "waveform": noisy}


BUILDERS = {
    "wifi_roundtrip": build_wifi_roundtrip,
    "zigbee_roundtrip": build_zigbee_roundtrip,
    "sledzig_insertion": build_sledzig_insertion,
    "impaired_wifi": build_impaired_wifi,
    "impaired_zigbee": build_impaired_zigbee,
}


def regenerate(outdir: Path, manifest_only: bool = False) -> Dict[str, Any]:
    """Write every vector and the manifest; returns the manifest dict.

    With *manifest_only* the vectors are rebuilt in memory and checked
    bit-identical against the committed ``.npz`` files — only the manifest
    is rewritten.  A mismatch means the chains changed and a full
    regeneration (plus a reviewed diff) is required instead.
    """
    outdir.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Any] = {
        "corpus_seed": CORPUS_SEED,
        "regen_command": "python -m repro.tools.regen_vectors",
        # Kernel provenance: which backend produced (or verified) every
        # vector.  Conformance holds the backends bit-identical, so the
        # corpus is backend-independent — the record documents the claim.
        "kernel_backends": kernels.backend_report(),
        "vectors": {},
    }
    for name, builder in BUILDERS.items():
        arrays = builder()
        path = outdir / f"{name}.npz"
        if manifest_only:
            _verify_matches(path, arrays)
        else:
            np.savez_compressed(path, **arrays)
        manifest["vectors"][name] = {
            "file": path.name,
            "spec": SPECS[name],
            "arrays": {
                key: {"shape": list(arr.shape), "dtype": str(arr.dtype)}
                for key, arr in arrays.items()
            },
        }
    with open(outdir / "manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest


def _verify_matches(path: Path, arrays: Dict[str, np.ndarray]) -> None:
    """Assert the committed .npz holds exactly *arrays* (manifest-only mode)."""
    if not path.exists():
        raise SystemExit(f"{path} missing; run a full regeneration first")
    with np.load(path) as existing:
        if sorted(existing.files) != sorted(arrays):
            raise SystemExit(f"{path.name}: array set changed; full regen needed")
        for key, arr in arrays.items():
            if not np.array_equal(existing[key], np.asarray(arr)):
                raise SystemExit(
                    f"{path.name}:{key} no longer matches the committed data; "
                    f"the chains changed — run a full regeneration and review "
                    f"the diff"
                )


def default_outdir() -> Path:
    """``tests/vectors`` relative to the repository root (cwd-independent)."""
    return Path(__file__).resolve().parents[3] / "tests" / "vectors"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--outdir", type=Path, default=None,
        help="corpus directory (default: the repo's tests/vectors/)",
    )
    parser.add_argument(
        "--manifest-only", action="store_true",
        help="verify the committed vectors still reproduce, then rewrite "
             "only manifest.json (no .npz is touched)",
    )
    args = parser.parse_args(argv)
    outdir = args.outdir or default_outdir()
    manifest = regenerate(outdir, manifest_only=args.manifest_only)
    for name, entry in manifest["vectors"].items():
        verb = "verified" if args.manifest_only else "wrote"
        print(f"{verb} {outdir / entry['file']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
