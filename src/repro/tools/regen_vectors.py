"""Regenerate the golden-vector regression corpus under ``tests/vectors/``.

Usage::

    python -m repro.tools.regen_vectors             # refresh tests/vectors/
    python -m repro.tools.regen_vectors --outdir X  # write elsewhere

Each vector freezes one end-to-end artefact of the library — a WiFi
encode/decode roundtrip, a ZigBee chip/frame roundtrip, a SledZig insertion
output — as an ``.npz`` of the exact arrays, with a ``manifest.json``
recording how every file was produced.  ``tests/test_golden_vectors.py``
diffs the current code's output against the corpus, so any unintended
change to the bit chains or waveform synthesis fails loudly.

Regenerate (and commit the diff) only when an intentional change to the
chains makes the old vectors obsolete — the test failure message says so.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Any, Dict

import numpy as np

from repro.montecarlo import seeding
from repro.sledzig.channels import get_channel
from repro.sledzig.encoder import SledZigEncoder
from repro.sledzig.pipeline import SledZigTransmitter
from repro.utils.bits import bytes_to_bits, random_bits
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.transmitter import ZigbeeTransmitter

#: Master seed addressing every payload draw in the corpus.
CORPUS_SEED = 2022

#: Parameterisation of each frozen vector (also recorded in the manifest).
SPECS: Dict[str, Dict[str, Any]] = {
    "wifi_roundtrip": {"mcs": "qam64-2/3", "psdu_octets": 60},
    "zigbee_roundtrip": {"psdu_octets": 24},
    "sledzig_insertion": {"mcs": "qam64-2/3", "channel": "CH2", "payload_octets": 40},
}


def build_wifi_roundtrip() -> Dict[str, np.ndarray]:
    """A standard 802.11 frame: PSDU bits, scrambled field, waveform."""
    spec = SPECS["wifi_roundtrip"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/wifi_roundtrip", 0)
    psdu = random_bits(8 * spec["psdu_octets"], rng)
    frame = WifiTransmitter(spec["mcs"]).transmit(psdu)
    return {
        "psdu_bits": psdu,
        "scrambled_field": frame.scrambled_field,
        "waveform": frame.waveform,
    }


def build_zigbee_roundtrip() -> Dict[str, np.ndarray]:
    """An 802.15.4 frame: PSDU octets, chip stream, O-QPSK waveform."""
    spec = SPECS["zigbee_roundtrip"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/zigbee_roundtrip", 0)
    psdu = bytes(rng.integers(0, 256, size=spec["psdu_octets"], dtype=np.uint8))
    trans = ZigbeeTransmitter().send(psdu)
    return {
        "psdu": np.frombuffer(psdu, dtype=np.uint8),
        "chips": np.asarray(trans.chips, dtype=np.uint8),
        "waveform": trans.waveform,
    }


def build_sledzig_insertion() -> Dict[str, np.ndarray]:
    """A SledZig encode: payload, inserted stream, positions, waveform."""
    spec = SPECS["sledzig_insertion"]
    rng = seeding.trial_rng(CORPUS_SEED, "vectors/sledzig_insertion", 0)
    payload = bytes(
        rng.integers(0, 256, size=spec["payload_octets"], dtype=np.uint8)
    )
    encoder = SledZigEncoder(spec["mcs"], get_channel(spec["channel"]))
    encoded = encoder.encode(bytes_to_bits(payload))
    packet = SledZigTransmitter(spec["mcs"], spec["channel"]).send(payload)
    return {
        "payload": np.frombuffer(payload, dtype=np.uint8),
        "stream": np.asarray(encoded.stream, dtype=np.uint8),
        "extra_positions": np.asarray(
            sorted(encoded.plan.extra_positions), dtype=np.int64
        ),
        "waveform": packet.waveform,
    }


BUILDERS = {
    "wifi_roundtrip": build_wifi_roundtrip,
    "zigbee_roundtrip": build_zigbee_roundtrip,
    "sledzig_insertion": build_sledzig_insertion,
}


def regenerate(outdir: Path) -> Dict[str, Any]:
    """Write every vector and the manifest; returns the manifest dict."""
    outdir.mkdir(parents=True, exist_ok=True)
    manifest: Dict[str, Any] = {
        "corpus_seed": CORPUS_SEED,
        "regen_command": "python -m repro.tools.regen_vectors",
        "vectors": {},
    }
    for name, builder in BUILDERS.items():
        arrays = builder()
        path = outdir / f"{name}.npz"
        np.savez_compressed(path, **arrays)
        manifest["vectors"][name] = {
            "file": path.name,
            "spec": SPECS[name],
            "arrays": {
                key: {"shape": list(arr.shape), "dtype": str(arr.dtype)}
                for key, arr in arrays.items()
            },
        }
    with open(outdir / "manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return manifest


def default_outdir() -> Path:
    """``tests/vectors`` relative to the repository root (cwd-independent)."""
    return Path(__file__).resolve().parents[3] / "tests" / "vectors"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--outdir", type=Path, default=None,
        help="corpus directory (default: the repo's tests/vectors/)",
    )
    args = parser.parse_args(argv)
    outdir = args.outdir or default_outdir()
    manifest = regenerate(outdir)
    for name, entry in manifest["vectors"].items():
        print(f"wrote {outdir / entry['file']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
