"""Benchmark trend gate: compare fresh BENCH_*.json against committed baselines.

Usage::

    python -m repro.tools.bench_trend check             # compare vs baselines
    python -m repro.tools.bench_trend check --max-regression 0.5
    python -m repro.tools.bench_trend schema            # validate file shape

``check`` reads every ``BENCH_<suite>.json`` in the baseline directory
(committed under ``benchmarks/baselines/``), pairs it with the fresh file
of the same name in the current directory (the repo root, where the
benchmark conftest writes them), and fails when any tracked ``mean_s``
regressed by more than ``--max-regression`` (default 20%).  Suites whose
fresh file is absent are skipped with a note — CI runs benchmark modules
selectively.  Within a paired suite, a benchmark present on only one side
is a *violation* with a per-name ``MISSING`` diagnostic: a fresh name
without a baseline means the committed baseline was not updated alongside
the new benchmark, and a baseline name the fresh run no longer produces
means a benchmark silently stopped running (the trend gate would
otherwise go green while tracking nothing).  A fresh ``BENCH_<suite>``
with no committed baseline file at all is flagged the same way.

``schema`` validates that every BENCH file carries what the trend gate
(and the perf-trajectory tooling) relies on: each entry has a ``fullname``
string, a positive ``mean_s``, and a positive integer ``rounds``.

Exit status: number of violations (0 = clean), matching the repo's other
CI linters.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

#: Default committed-baseline directory, relative to the repo root.
DEFAULT_BASELINE_DIR = "benchmarks/baselines"

#: Default allowed fractional regression of a tracked mean (20%).
DEFAULT_MAX_REGRESSION = 0.20


def load_bench_file(path: Path) -> Dict[str, dict]:
    """The ``benchmarks`` mapping of one BENCH_<suite>.json file."""
    data = json.loads(path.read_text())
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, dict):
        raise ValueError(f"{path}: no 'benchmarks' mapping")
    return benchmarks


def schema_violations(path: Path) -> List[str]:
    """Schema problems of one BENCH file (empty = valid)."""
    problems: List[str] = []
    try:
        benchmarks = load_bench_file(path)
    except (ValueError, json.JSONDecodeError) as exc:
        return [f"{path.name}: unreadable ({exc})"]
    if not benchmarks:
        problems.append(f"{path.name}: empty benchmarks mapping")
    for name, entry in benchmarks.items():
        where = f"{path.name}:{name}"
        if not isinstance(entry, dict):
            problems.append(f"{where}: entry is not an object")
            continue
        fullname = entry.get("fullname")
        if not isinstance(fullname, str) or "::" not in fullname:
            problems.append(f"{where}: missing/malformed 'fullname'")
        mean_s = entry.get("mean_s")
        if not isinstance(mean_s, (int, float)) or not mean_s > 0:
            problems.append(f"{where}: 'mean_s' must be a positive number")
        rounds = entry.get("rounds")
        if not isinstance(rounds, int) or rounds < 1:
            problems.append(f"{where}: 'rounds' must be a positive integer")
    return problems


def compare_suite(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    suite: str,
    max_regression: float,
) -> Tuple[List[str], List[str]]:
    """-> (violations, notes) for one suite's baseline/current pair.

    Name mismatches are violations, not notes: each missing side gets its
    own diagnostic naming the benchmark and the fix (update the committed
    baseline, or explain the retirement), so a renamed or silently-skipped
    benchmark can never pass the gate unnoticed.
    """
    violations: List[str] = []
    notes: List[str] = []
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            violations.append(
                f"MISSING {suite}:{name}: in baselines/BENCH_{suite}.json but "
                f"not in the fresh run — retired? remove it from the baseline"
            )
            continue
        if name not in baseline:
            violations.append(
                f"MISSING {suite}:{name}: fresh benchmark with no committed "
                f"baseline — add it to baselines/BENCH_{suite}.json"
            )
            continue
        base_mean = baseline[name].get("mean_s")
        cur_mean = current[name].get("mean_s")
        if not base_mean or not cur_mean:
            notes.append(f"{suite}:{name}: missing mean_s, skipped")
            continue
        ratio = cur_mean / base_mean - 1.0
        if ratio > max_regression:
            violations.append(
                f"REGRESSION {suite}:{name}: mean {cur_mean * 1e3:.3f} ms is "
                f"{ratio * 100.0:+.1f}% vs baseline "
                f"{base_mean * 1e3:.3f} ms (limit +{max_regression * 100.0:.0f}%)"
            )
        else:
            notes.append(
                f"{suite}:{name}: {ratio * 100.0:+.1f}% "
                f"({cur_mean * 1e3:.3f} ms vs {base_mean * 1e3:.3f} ms)"
            )
    return violations, notes


def _bench_files(directory: Path) -> Iterable[Path]:
    return sorted(directory.glob("BENCH_*.json"))


def run_check(
    current_dir: Path,
    baseline_dir: Path,
    max_regression: float,
    out=None,
) -> int:
    """Compare fresh BENCH files against baselines; return violation count."""
    out = out if out is not None else sys.stdout
    baseline_files = list(_bench_files(baseline_dir))
    if not baseline_files:
        print(f"no baselines under {baseline_dir}; nothing to check", file=out)
        return 0
    total = 0
    for baseline_path in baseline_files:
        current_path = current_dir / baseline_path.name
        suite = baseline_path.stem.removeprefix("BENCH_")
        if not current_path.exists():
            print(f"{suite}: no fresh {baseline_path.name}; skipped", file=out)
            continue
        violations, notes = compare_suite(
            load_bench_file(baseline_path),
            load_bench_file(current_path),
            suite,
            max_regression,
        )
        for note in notes:
            print(f"  ok  {note}", file=out)
        for violation in violations:
            print(violation, file=out)
        total += len(violations)
    # A whole fresh suite with no committed baseline file is the same
    # update-the-baseline failure, one diagnostic per benchmark name.
    baseline_names = {p.name for p in baseline_files}
    for current_path in _bench_files(current_dir):
        if current_path.name in baseline_names:
            continue
        suite = current_path.stem.removeprefix("BENCH_")
        for name in sorted(load_bench_file(current_path)):
            print(
                f"MISSING {suite}:{name}: fresh suite has no committed "
                f"{current_path.name} under {baseline_dir}",
                file=out,
            )
            total += 1
    print(
        f"bench trend: {total} violation(s) (regressions beyond "
        f"+{max_regression * 100.0:.0f}% or baseline/run name mismatches)",
        file=out,
    )
    return total


def run_schema(directory: Path, out=None) -> int:
    """Validate every BENCH file in *directory*; return violation count."""
    out = out if out is not None else sys.stdout
    files = list(_bench_files(directory))
    if not files:
        print(f"no BENCH_*.json under {directory}", file=out)
        return 1
    total = 0
    for path in files:
        problems = schema_violations(path)
        for problem in problems:
            print(f"SCHEMA {problem}", file=out)
        total += len(problems)
    print(f"bench schema: {len(files)} file(s), {total} violation(s)", file=out)
    return total


def main(argv: "List[str] | None" = None) -> int:
    """CLI entry point; exit status is the violation count."""
    parser = argparse.ArgumentParser(description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser("check", help="compare fresh BENCH files vs baselines")
    check.add_argument(
        "--current", type=Path, default=Path("."), metavar="DIR",
        help="directory holding the fresh BENCH_*.json (default: .)",
    )
    check.add_argument(
        "--baseline", type=Path, default=Path(DEFAULT_BASELINE_DIR),
        metavar="DIR", help=f"baseline directory (default: {DEFAULT_BASELINE_DIR})",
    )
    check.add_argument(
        "--max-regression", type=float, default=DEFAULT_MAX_REGRESSION,
        metavar="FRAC",
        help="allowed fractional mean_s regression (default: 0.20 = +20%%)",
    )

    schema = sub.add_parser("schema", help="validate BENCH file shape")
    schema.add_argument(
        "--current", type=Path, default=Path("."), metavar="DIR",
        help="directory holding the BENCH_*.json files (default: .)",
    )

    args = parser.parse_args(argv)
    if args.command == "check":
        return run_check(args.current, args.baseline, args.max_regression)
    return run_schema(args.current)


if __name__ == "__main__":
    sys.exit(main())
