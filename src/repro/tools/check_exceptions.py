"""Lint the library for blanket exception handlers (CI gate).

Usage::

    python -m repro.tools.check_exceptions            # lint src/repro
    python -m repro.tools.check_exceptions path/...   # lint other trees

A ``try``/``except Exception:`` (or a bare ``except:``) around a decode
stage converts genuine bugs — ``TypeError``, ``IndexError`` — into "frame
lost" statistics under ``on_error="none"``; exactly the failure mode the
telemetry layer exists to expose.  This linter walks the AST of every
Python file and flags handlers that catch ``Exception``/``BaseException``
(or everything), **unless**:

* the handler re-raises unconditionally (its last statement is a bare
  ``raise``) — counting an unexpected error before propagating it is the
  sanctioned pattern; or
* the handler sits in :data:`ALLOWLIST` — deliberate process boundaries
  where any failure must be reported rather than crash the run (the
  experiment runner's per-experiment fence).

Exit status is the number of violations (0 = clean).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Tuple

#: (path suffix, enclosing function) pairs of sanctioned blanket handlers.
ALLOWLIST: Tuple[Tuple[str, str], ...] = (
    ("repro/experiments/runner.py", "run_experiments"),
    # Serving boundaries: a failed batch must fail its own requests (the
    # clients re-raise the real error) without killing the batcher task or
    # the inline pool — the gateway's analogue of the runner fence.
    # Unexpected (non-ReproError) failures are counted apart from the
    # typed drop taxonomy as gateway.error.unexpected.
    ("repro/gateway/pool.py", "submit"),
    ("repro/gateway/server.py", "_dispatch_batch"),
)

_BROAD = {"Exception", "BaseException"}


def _is_broad(handler: ast.ExceptHandler) -> bool:
    """Does this handler catch everything (or effectively everything)?"""
    if handler.type is None:
        return True
    if isinstance(handler.type, ast.Name):
        return handler.type.id in _BROAD
    if isinstance(handler.type, ast.Tuple):
        return any(
            isinstance(el, ast.Name) and el.id in _BROAD
            for el in handler.type.elts
        )
    return False


def _reraises(handler: ast.ExceptHandler) -> bool:
    """Does the handler end in a bare ``raise`` (so nothing is swallowed)?"""
    last = handler.body[-1]
    return isinstance(last, ast.Raise) and last.exc is None


def _enclosing_functions(tree: ast.AST) -> "dict[int, str]":
    """Map every line to the name of its innermost enclosing function."""
    spans: List[Tuple[int, int, str]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            end = getattr(node, "end_lineno", node.lineno)
            spans.append((node.lineno, end, node.name))
    owner: "dict[int, str]" = {}
    # Later (inner) spans overwrite outer ones on overlapping lines.
    for start, end, name in sorted(spans, key=lambda s: (s[0], -s[1])):
        for line in range(start, end + 1):
            owner[line] = name
    return owner


def _allowlisted(path: Path, function: str) -> bool:
    posix = path.as_posix()
    return any(
        posix.endswith(suffix) and function == fn for suffix, fn in ALLOWLIST
    )


def lint_file(path: Path) -> List[str]:
    """Violation messages ('path:line: ...') for one Python file."""
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    owners = _enclosing_functions(tree)
    violations: List[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad(node) or _reraises(node):
            continue
        function = owners.get(node.lineno, "<module>")
        if _allowlisted(path, function):
            continue
        caught = "bare except" if node.type is None else "except Exception"
        violations.append(
            f"{path}:{node.lineno}: {caught} in {function}() swallows "
            "unexpected errors; catch the typed repro.errors hierarchy "
            "(or end the handler with a bare `raise`)"
        )
    return violations


def lint_tree(roots: Iterable[Path]) -> List[str]:
    """Violations across every ``*.py`` under the given roots."""
    violations: List[str] = []
    for root in roots:
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            violations.extend(lint_file(path))
    return violations


def main(argv: "List[str] | None" = None) -> int:
    """CLI entry point; exits nonzero on any violation."""
    args = argv if argv is not None else sys.argv[1:]
    roots = [Path(a) for a in args] if args else [Path("src/repro")]
    violations = lint_tree(roots)
    for message in violations:
        print(message)
    if violations:
        print(f"{len(violations)} blanket exception handler(s) found")
    return len(violations)


if __name__ == "__main__":
    sys.exit(main())
