"""Validate ``--metrics-out`` JSONL run manifests (CI/analysis gate).

Usage::

    python -m repro.tools.check_manifest metrics.jsonl [more.jsonl ...]

Every line of a manifest must be a self-describing record a later
analysis job can trust blindly: the required keys present, the embedded
``config`` digesting to the recorded ``config_digest`` (so a hand-edited
line cannot masquerade as provenance), and — for successful runs — the
telemetry tables in shape: ``drops`` holding only ``*.drop.<cause>``
counters that agree with ``counters``, ``timings`` histograms carrying
the count/total/mean/min/max summary the trend tooling reads.  Both the
classic experiment manifests, the gateway SLO manifests (which add a
``slo`` object with latency percentiles and the batch-fill table) and the
CTC experiment manifests (a ``ctc`` object with the side channel's error
budget and delivery comparison) pass through the same checks.

Exit status is the number of violations (0 = clean), matching the repo's
other CI linters.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Dict, List

from repro.telemetry.manifest import config_digest

__all__ = ["lint_manifest", "lint_record", "main"]

#: Keys every manifest record must carry.
REQUIRED_KEYS = ("experiment", "status", "config", "config_digest", "seconds")

#: Keys a ``status == "ok"`` record must additionally carry.
OK_KEYS = ("counters", "gauges", "drops", "timings")

#: The summary fields of one timing histogram.
TIMING_FIELDS = ("count", "total", "mean", "min", "max")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def lint_record(record: Any, where: str) -> List[str]:
    """Violation messages for one parsed manifest record."""
    if not isinstance(record, dict):
        return [f"{where}: record is not a JSON object"]
    problems: List[str] = []
    for key in REQUIRED_KEYS:
        if key not in record:
            problems.append(f"{where}: missing required key {key!r}")
    status = record.get("status")
    if status not in ("ok", "failed"):
        problems.append(f"{where}: status must be 'ok' or 'failed', got {status!r}")
    seconds = record.get("seconds")
    if "seconds" in record and (not _is_number(seconds) or seconds < 0):
        problems.append(f"{where}: 'seconds' must be a non-negative number")
    if "config" in record and "config_digest" in record:
        expected = config_digest(record["config"])
        if record["config_digest"] != expected:
            problems.append(
                f"{where}: config_digest {record['config_digest']!r} does not "
                f"match the embedded config (expected {expected!r})"
            )
    if status == "failed":
        if not isinstance(record.get("error"), str) or not record.get("error"):
            problems.append(f"{where}: failed record needs a non-empty 'error'")
        return problems
    if status != "ok":
        return problems
    for key in OK_KEYS:
        if not isinstance(record.get(key), dict):
            problems.append(f"{where}: 'ok' record needs a {key!r} mapping")
    problems.extend(_lint_drops(record, where))
    problems.extend(_lint_timings(record, where))
    slo = record.get("slo")
    if slo is not None:
        problems.extend(_lint_slo(slo, where))
    ctc = record.get("ctc")
    if ctc is not None:
        problems.extend(_lint_ctc(ctc, where))
    return problems


def _lint_drops(record: Dict[str, Any], where: str) -> List[str]:
    """The drop-cause table: ``*.drop.<cause>`` keys agreeing with counters."""
    drops = record.get("drops")
    counters = record.get("counters")
    if not isinstance(drops, dict):
        return []
    problems: List[str] = []
    for key, value in drops.items():
        if ".drop." not in key:
            problems.append(
                f"{where}: drops key {key!r} is not a '*.drop.<cause>' counter"
            )
        if not _is_number(value):
            problems.append(f"{where}: drops[{key!r}] is not numeric")
        elif isinstance(counters, dict) and counters.get(key) != value:
            problems.append(
                f"{where}: drops[{key!r}]={value} disagrees with "
                f"counters[{key!r}]={counters.get(key)!r}"
            )
    return problems


def _lint_timings(record: Dict[str, Any], where: str) -> List[str]:
    timings = record.get("timings")
    if not isinstance(timings, dict):
        return []
    problems: List[str] = []
    for name, hist in timings.items():
        if not isinstance(hist, dict):
            problems.append(f"{where}: timings[{name!r}] is not an object")
            continue
        for fld in TIMING_FIELDS:
            if not _is_number(hist.get(fld)):
                problems.append(
                    f"{where}: timings[{name!r}] missing numeric {fld!r}"
                )
    return problems


def _lint_slo(slo: Any, where: str) -> List[str]:
    """The gateway SLO object: latency percentiles + batch-fill table."""
    if not isinstance(slo, dict):
        return [f"{where}: 'slo' is not an object"]
    problems: List[str] = []
    latency = slo.get("latency_s")
    if not isinstance(latency, dict):
        problems.append(f"{where}: slo needs a 'latency_s' object")
    else:
        for fld in ("count", "p50", "p99"):
            if not _is_number(latency.get(fld)):
                problems.append(
                    f"{where}: slo.latency_s missing numeric {fld!r}"
                )
    fill = slo.get("batch_fill")
    if not isinstance(fill, dict):
        problems.append(f"{where}: slo needs a 'batch_fill' table")
    else:
        for size, count in fill.items():
            if not str(size).isdigit() or not _is_number(count):
                problems.append(
                    f"{where}: slo.batch_fill[{size!r}] is not a "
                    "batch-size -> count entry"
                )
    for fld in ("requests", "encoded"):
        if not _is_number(slo.get(fld)):
            problems.append(f"{where}: slo missing numeric {fld!r}")
    if not isinstance(slo.get("drops"), dict):
        problems.append(f"{where}: slo needs a 'drops' mapping")
    return problems


def _lint_ctc(ctc: Any, where: str) -> List[str]:
    """The CTC acceptance object: error budget + delivery comparison."""
    if not isinstance(ctc, dict):
        return [f"{where}: 'ctc' is not an object"]
    problems: List[str] = []
    for fld in (
        "depth", "frames_per_symbol", "noise_db", "separation_db", "ber",
        "frames_sent", "frames_delivered",
        "sync_errors", "header_errors", "crc_errors",
    ):
        if not _is_number(ctc.get(fld)):
            problems.append(f"{where}: ctc missing numeric {fld!r}")
    ber = ctc.get("ber")
    if _is_number(ber) and not 0.0 <= ber <= 1.0:
        problems.append(f"{where}: ctc.ber must be a probability, got {ber!r}")
    delivery = ctc.get("delivery")
    if not isinstance(delivery, dict):
        problems.append(f"{where}: ctc needs a 'delivery' object")
    else:
        for fld in ("sledzig", "ctc", "delta"):
            if not _is_number(delivery.get(fld)):
                problems.append(
                    f"{where}: ctc.delivery missing numeric {fld!r}"
                )
    return problems


def lint_manifest(path: Path) -> List[str]:
    """Violations across every line of one JSONL manifest."""
    problems: List[str] = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"]
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        return [f"{path}: empty manifest"]
    for lineno, line in enumerate(lines, start=1):
        where = f"{path}:{lineno}"
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"{where}: not valid JSON ({exc})")
            continue
        problems.extend(lint_record(record, where))
    return problems


def main(argv: "List[str] | None" = None) -> int:
    """CLI entry point; exits nonzero on any violation."""
    args = argv if argv is not None else sys.argv[1:]
    if not args:
        print("usage: python -m repro.tools.check_manifest PATH [PATH ...]")
        return 2
    violations: List[str] = []
    for arg in args:
        violations.extend(lint_manifest(Path(arg)))
    for message in violations:
        print(message)
    if violations:
        print(f"{len(violations)} manifest violation(s) found")
    return len(violations)


if __name__ == "__main__":
    sys.exit(main())
