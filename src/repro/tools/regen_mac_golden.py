"""Regenerate the two-node MAC equivalence pins (``tests/mac/golden_two_node.json``).

Usage::

    python -m repro.tools.regen_mac_golden [--out PATH]

The golden file freezes the *exact* outputs of the two-node coexistence
simulator — full counter sets from :func:`repro.mac.simulator.run_coexistence`
for a handful of configurations, plus a small :func:`~repro.mac.simulator.sweep`
campaign — as ``repr``-round-trippable floats.  The equivalence regression in
``tests/mac/test_equivalence_pins.py`` asserts bit-identity against this file,
so any refactor of the event core, the medium, or the node state machines that
silently changes a single RNG draw or event ordering fails loudly.

Only rerun this tool when a *deliberate, reviewed* behaviour change to the
two-node simulator is being made; the diff of the JSON is the change record.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import replace
from pathlib import Path
from typing import Dict

from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.simulator import run_coexistence, sweep

#: Simulated duration of each pinned run (kept short: the pins run in CI).
DURATION_US = 150_000.0

#: The pinned single-run configurations, keyed by scenario label.
CASES = {
    "continuous_ch4": dict(
        wifi=WifiConfig(),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=4.0, d_z=1.0),
        seed=3,
    ),
    "sledzig_qam256": dict(
        wifi=WifiConfig(mcs_name="qam256-3/4", sledzig_channel=4),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=2.0, d_z=1.0),
        seed=3,
    ),
    "bursty_duty_half": dict(
        wifi=WifiConfig(duty_ratio=0.5, burst_duration_us=4000.0),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=2.5, d_z=1.0),
        seed=5,
        fading_sigma_db=2.0,
    ),
}

#: The pinned sweep: d_WZ values x 2 seeds on the Monte-Carlo engine.
SWEEP_VALUES = (2.0, 4.0, 6.0)
SWEEP_SEEDS = 2


def _zigbee_record(stats) -> Dict[str, float]:
    return {
        "packets_attempted": stats.packets_attempted,
        "packets_sent": stats.packets_sent,
        "packets_delivered": stats.packets_delivered,
        "packets_dropped_cca": stats.packets_dropped_cca,
        "packets_failed": stats.packets_failed,
        "payload_bits_delivered": stats.payload_bits_delivered,
        "cca_attempts": stats.cca_attempts,
        "cca_busy": stats.cca_busy,
    }


def _wifi_record(stats) -> Dict[str, float]:
    return {
        "bursts_sent": stats.bursts_sent,
        "airtime_us": stats.airtime_us,
        "payload_bits": stats.payload_bits,
        "extra_bits": stats.extra_bits,
        "bursts_ok": stats.bursts_ok,
        "bursts_degraded": stats.bursts_degraded,
    }


def generate() -> Dict[str, object]:
    """Run the pinned configurations and collect exact outputs."""
    runs: Dict[str, object] = {}
    for label, kwargs in CASES.items():
        config = CoexistenceConfig(duration_us=DURATION_US, **kwargs)
        result = run_coexistence(config)
        runs[label] = {
            "zigbee": _zigbee_record(result.zigbee),
            "wifi": _wifi_record(result.wifi),
            "wifi_sinr_db": result.wifi_sinr_db,
        }
    base = CoexistenceConfig(
        wifi=WifiConfig(),
        zigbee=ZigbeeConfig(channel_index=4),
        topology=Topology(d_wz=4.0, d_z=1.0),
        duration_us=DURATION_US,
        seed=3,
    )
    points = sweep(
        base,
        values=list(SWEEP_VALUES),
        apply_value=lambda cfg, v: replace(
            cfg, topology=Topology(d_wz=v, d_z=1.0)
        ),
        n_seeds=SWEEP_SEEDS,
    )
    return {
        "duration_us": DURATION_US,
        "runs": runs,
        "sweep": {
            "values": list(SWEEP_VALUES),
            "n_seeds": SWEEP_SEEDS,
            "throughputs_kbps": [p.throughputs_kbps for p in points],
        },
    }


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default="tests/mac/golden_two_node.json",
        help="output path (default: tests/mac/golden_two_node.json)",
    )
    args = parser.parse_args(argv)
    payload = generate()
    out = Path(args.out)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out} ({len(json.dumps(payload))} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
