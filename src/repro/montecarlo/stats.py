"""Trial-outcome aggregation: means, proportions and confidence intervals.

The experiments report two kinds of Monte-Carlo estimates:

* *proportions* (frame delivery ratio, collision rate) — summarised with the
  Wilson score interval, which stays inside [0, 1] and behaves sensibly at
  0/n and n/n where the normal approximation collapses;
* *means* (throughput, RSSI) — summarised with the usual normal-approximation
  interval on the sample mean.

Both produce a :class:`TrialSummary`, the unit the engine's early-stop rule
operates on (stop when ``halfwidth`` reaches the target).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: Two-sided 95 % normal quantile — the default confidence level throughout.
Z_95 = 1.959963984540054

__all__ = ["Z_95", "TrialSummary", "wilson_interval", "summarize_mean", "summarize_proportion"]


@dataclass(frozen=True)
class TrialSummary:
    """Aggregate of one Monte-Carlo outcome series.

    Attributes:
        n: number of trials aggregated.
        mean: sample mean (for proportions: the raw success fraction).
        std: sample standard deviation (ddof=1; 0.0 when n < 2).
        ci_low / ci_high: confidence interval on the mean.
        kind: "mean" or "proportion" (which interval rule produced it).
    """

    n: int
    mean: float
    std: float
    ci_low: float
    ci_high: float
    kind: str = "mean"

    @property
    def halfwidth(self) -> float:
        """Half the confidence-interval width — the early-stop criterion."""
        return (self.ci_high - self.ci_low) / 2.0


def wilson_interval(successes: int, n: int, z: float = Z_95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Unlike the Wald interval it never leaves [0, 1] and gives non-degenerate
    bounds at 0 or n successes — exactly the regimes the delivery-ratio
    experiments hit at the ends of an SNR sweep.
    """
    if n <= 0:
        raise ConfigurationError("Wilson interval needs at least one trial")
    if not 0 <= successes <= n:
        raise ConfigurationError("successes must lie in [0, n]")
    p = successes / n
    z2 = z * z
    denom = 1.0 + z2 / n
    centre = (p + z2 / (2.0 * n)) / denom
    margin = (z / denom) * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n))
    return (float(max(0.0, centre - margin)), float(min(1.0, centre + margin)))


def summarize_mean(values: Sequence[float], z: float = Z_95) -> TrialSummary:
    """Normal-approximation summary of a real-valued outcome series."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ConfigurationError("cannot summarise zero trials")
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if arr.size > 1 else 0.0
    sem = std / np.sqrt(arr.size) if arr.size > 1 else 0.0
    return TrialSummary(
        n=int(arr.size),
        mean=mean,
        std=std,
        ci_low=mean - z * sem,
        ci_high=mean + z * sem,
        kind="mean",
    )


def summarize_proportion(values: Sequence[float], z: float = Z_95) -> TrialSummary:
    """Wilson summary of a 0/1 outcome series."""
    arr = np.asarray(values, dtype=float).ravel()
    if arr.size == 0:
        raise ConfigurationError("cannot summarise zero trials")
    if np.any((arr != 0.0) & (arr != 1.0)):
        raise ConfigurationError("proportion outcomes must be 0 or 1")
    successes = int(arr.sum())
    low, high = wilson_interval(successes, arr.size, z)
    p = successes / arr.size
    return TrialSummary(
        n=int(arr.size),
        mean=p,
        std=float(np.sqrt(p * (1.0 - p))),
        ci_low=low,
        ci_high=high,
        kind="proportion",
    )
