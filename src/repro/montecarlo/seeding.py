"""Deterministic per-trial RNG streams for Monte-Carlo experiments.

Every stochastic experiment in the library draws its randomness from a
stream addressed by ``(master seed, experiment key, trial index)``.  The
scheme is built on :class:`numpy.random.SeedSequence`:

* the experiment key is hashed (SHA-256) into four 32-bit entropy words, so
  distinct experiments get statistically independent root sequences even
  under the same master seed;
* trial *i* uses ``spawn_key=(i,)`` on that root — exactly the *i*-th child
  ``SeedSequence.spawn`` would produce, but addressable directly without
  materialising the first *i* - 1 children.

Because a trial's stream depends only on the address and never on execution
order, results are bit-identical whether trials run serially, stacked in
batches, or sharded across any number of worker processes — the property
the determinism tests in ``tests/montecarlo/`` pin down.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

__all__ = [
    "experiment_entropy",
    "experiment_sequence",
    "trial_sequence",
    "trial_rng",
    "trial_rngs",
    "trial_seed",
    "node_sequence",
    "node_rng",
]


def experiment_entropy(experiment: str) -> "tuple[int, ...]":
    """Four 32-bit entropy words derived from an experiment key.

    SHA-256 rather than ``hash()`` so the mapping is stable across
    processes and Python versions (``PYTHONHASHSEED`` never leaks in).
    """
    digest = hashlib.sha256(experiment.encode("utf-8")).digest()
    return tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )


def experiment_sequence(master_seed: int, experiment: str) -> np.random.SeedSequence:
    """Root :class:`~numpy.random.SeedSequence` for one experiment."""
    return np.random.SeedSequence(
        entropy=(int(master_seed), *experiment_entropy(experiment))
    )


def trial_sequence(
    master_seed: int, experiment: str, trial_index: int
) -> np.random.SeedSequence:
    """The sequence for one trial: child *trial_index* of the experiment root."""
    if trial_index < 0:
        raise ValueError("trial_index must be non-negative")
    return np.random.SeedSequence(
        entropy=(int(master_seed), *experiment_entropy(experiment)),
        spawn_key=(int(trial_index),),
    )


def trial_rng(
    master_seed: int, experiment: str, trial_index: int
) -> np.random.Generator:
    """A fresh :class:`~numpy.random.Generator` for one trial."""
    return np.random.default_rng(trial_sequence(master_seed, experiment, trial_index))


def trial_rngs(
    master_seed: int, experiment: str, trial_indices: Sequence[int]
) -> List[np.random.Generator]:
    """Independent per-trial generators, in the order of *trial_indices*."""
    return [trial_rng(master_seed, experiment, i) for i in trial_indices]


def node_sequence(
    master_seed: int, experiment: str, trial_index: int, node_key: str
) -> np.random.SeedSequence:
    """The sequence for one *node* inside one trial.

    Scenario simulations give every node (each BSS, each sensor) its own
    generator so a node's draw sequence depends only on its stable string
    key — never on how many other nodes exist or where it sits in a config
    list.  The address extends :func:`trial_sequence` with two 32-bit
    words hashed from *node_key*: ``spawn_key=(trial, k0, k1)``.  Keys
    must be unique within a scenario; the scenario builder enforces that.
    """
    if trial_index < 0:
        raise ValueError("trial_index must be non-negative")
    digest = hashlib.sha256(node_key.encode("utf-8")).digest()
    k0 = int.from_bytes(digest[0:4], "little")
    k1 = int.from_bytes(digest[4:8], "little")
    return np.random.SeedSequence(
        entropy=(int(master_seed), *experiment_entropy(experiment)),
        spawn_key=(int(trial_index), k0, k1),
    )


def node_rng(
    master_seed: int, experiment: str, trial_index: int, node_key: str
) -> np.random.Generator:
    """A fresh generator for one node of one trial (see :func:`node_sequence`)."""
    return np.random.default_rng(
        node_sequence(master_seed, experiment, trial_index, node_key)
    )


def trial_seed(master_seed: int, experiment: str, trial_index: int) -> int:
    """A plain-int seed for APIs that take one (e.g. ``CoexistenceConfig.seed``).

    Folded from the trial sequence's generated state, so the same
    addressability guarantees hold for integer-seeded consumers.
    """
    state = trial_sequence(master_seed, experiment, trial_index).generate_state(
        2, np.uint32
    )
    return int(state[0]) | (int(state[1]) << 32)
