"""Deterministic batched Monte-Carlo trial engine.

The engine turns "run this trial N times and summarise" into one call with
three guarantees:

1. **Bit-reproducibility.**  Trial *i* of experiment *e* under master seed
   *s* always sees the generator ``seeding.trial_rng(s, e, i)`` — so the
   outcome array is identical whether trials run one by one, stacked in
   batches of any size, or sharded across any number of worker processes.
2. **Batch execution.**  A ``batch_fn`` receives the per-trial generators
   for a whole batch and may evaluate them in one vectorized pass (stacked
   waveforms through :mod:`repro.channel.batch`, batched decode through the
   ``*_frames`` APIs).  The contract — checked by the equivalence tests —
   is that ``batch_fn(rngs, indices)[k]`` equals ``trial_fn(rngs[k],
   indices[k])`` exactly.
3. **Statistical qualification.**  Outcomes aggregate into a
   :class:`~repro.montecarlo.stats.TrialSummary` (Wilson interval for 0/1
   outcomes); an optional early stop ends the campaign at the first batch
   boundary where the confidence halfwidth reaches a target.

Worker processes evaluate whole batches; because outcomes are keyed by
trial index and early stopping is decided in batch order, parallel runs
stop at exactly the same boundary as serial ones.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError
from repro.montecarlo import seeding
from repro.montecarlo.stats import (
    TrialSummary,
    Z_95,
    summarize_mean,
    summarize_proportion,
)

__all__ = ["TrialFn", "BatchFn", "MonteCarloResult", "MonteCarloEngine"]

#: A single trial: (trial generator, trial index) -> scalar outcome.
TrialFn = Callable[[np.random.Generator, int], float]

#: A batch of trials: (per-trial generators, trial indices) -> outcomes.
BatchFn = Callable[[List[np.random.Generator], Sequence[int]], Sequence[float]]


@dataclass(frozen=True)
class MonteCarloResult:
    """One completed trial campaign.

    Attributes:
        experiment: the experiment key the streams were derived from.
        master_seed: the master seed.
        outcomes: per-trial scalar outcomes, indexed by trial number.
        summary: aggregate statistics over ``outcomes``.
        stopped_early: whether the CI target ended the campaign before
            ``n_trials``.
    """

    experiment: str
    master_seed: int
    outcomes: np.ndarray
    summary: TrialSummary
    stopped_early: bool = False

    @property
    def n_trials(self) -> int:
        """Number of trials actually executed."""
        return int(self.outcomes.size)


#: Per-worker campaign constants, set once by :func:`_init_worker`.
#: ``(experiment, master_seed, trial_fn, batch_fn)`` — the pieces that are
#: identical for every batch of a campaign and must therefore travel via
#: the pool initializer, not with every task (a ``batch_fn`` closing over
#: stacked payload arrays used to be re-pickled per batch).
_WORKER_CAMPAIGN: "Optional[Tuple[str, int, Optional[TrialFn], Optional[BatchFn]]]" = None


def _init_worker(
    experiment: str,
    master_seed: int,
    trial_fn: Optional[TrialFn],
    batch_fn: Optional[BatchFn],
) -> None:
    """Pool initializer: install the campaign constants in this worker."""
    global _WORKER_CAMPAIGN
    _WORKER_CAMPAIGN = (experiment, master_seed, trial_fn, batch_fn)


def _worker_batch(indices: Sequence[int]) -> "Tuple[List[float], telemetry.Snapshot]":
    """Worker-process task: evaluate one batch of the installed campaign.

    Only the trial indices travel with the task (bounded per-task pickle
    cost, pinned by ``tests/montecarlo/test_worker_pickle.py``); the
    evaluators and seeds were shipped once via :func:`_init_worker`.
    """
    if _WORKER_CAMPAIGN is None:
        raise ConfigurationError("worker used before its campaign initializer")
    experiment, master_seed, trial_fn, batch_fn = _WORKER_CAMPAIGN
    return _evaluate_batch(experiment, master_seed, trial_fn, batch_fn, indices)


def _evaluate_batch(
    experiment: str,
    master_seed: int,
    trial_fn: Optional[TrialFn],
    batch_fn: Optional[BatchFn],
    indices: Sequence[int],
) -> "Tuple[List[float], telemetry.Snapshot]":
    """Evaluate one batch of trials (also the worker-process entry point).

    Generators are re-derived from the trial addresses here, so the same
    streams materialise no matter which process runs the batch.  The batch
    runs under a fresh telemetry collector whose snapshot is returned with
    the outcomes: the caller merges snapshots in batch order, so the
    merged counters are bit-identical whether batches run serially or in
    worker processes (timers are wall clock and exempt).
    """
    with telemetry.collect() as tel:
        tel.count("montecarlo.batches")
        tel.count("montecarlo.trials", len(indices))
        with tel.span("montecarlo.batch"):
            rngs = seeding.trial_rngs(master_seed, experiment, indices)
            if batch_fn is not None:
                outcomes = [float(v) for v in batch_fn(rngs, list(indices))]
                if len(outcomes) != len(indices):
                    raise ConfigurationError(
                        f"batch_fn returned {len(outcomes)} outcomes for "
                        f"{len(indices)} trials"
                    )
            else:
                assert trial_fn is not None
                outcomes = [
                    float(trial_fn(rng, i)) for rng, i in zip(rngs, indices)
                ]
    return outcomes, tel.snapshot()


class MonteCarloEngine:
    """Seed-addressable trial campaigns for one experiment key.

    Args:
        experiment: stable key naming the experiment (include swept
            parameters, e.g. ``"snr_waterfall/qam64-2/3/12.0dB"``, so each
            sweep point has its own independent streams).
        master_seed: the campaign's master seed.
        kind: "mean" or "proportion" — selects the summary rule.
        z: confidence quantile (default two-sided 95 %).
    """

    def __init__(
        self,
        experiment: str,
        master_seed: int = 0,
        kind: str = "mean",
        z: float = Z_95,
    ) -> None:
        if kind not in ("mean", "proportion"):
            raise ConfigurationError(f"unknown summary kind {kind!r}")
        self.experiment = experiment
        self.master_seed = int(master_seed)
        self.kind = kind
        self.z = z

    def rng(self, trial_index: int) -> np.random.Generator:
        """The generator trial *trial_index* sees."""
        return seeding.trial_rng(self.master_seed, self.experiment, trial_index)

    def rngs(self, trial_indices: Sequence[int]) -> List[np.random.Generator]:
        """Per-trial generators for a batch."""
        return seeding.trial_rngs(self.master_seed, self.experiment, trial_indices)

    def _summarize(self, outcomes: Sequence[float]) -> TrialSummary:
        if self.kind == "proportion":
            return summarize_proportion(outcomes, self.z)
        return summarize_mean(outcomes, self.z)

    def run(
        self,
        trial_fn: Optional[TrialFn] = None,
        n_trials: int = 0,
        *,
        batch_fn: Optional[BatchFn] = None,
        batch_size: int = 32,
        workers: int = 0,
        target_halfwidth: Optional[float] = None,
        min_trials: int = 8,
    ) -> MonteCarloResult:
        """Run up to *n_trials* trials and summarise.

        Args:
            trial_fn: scalar trial evaluator; required unless *batch_fn* is
                given (when both are given, *batch_fn* runs and *trial_fn*
                is ignored — they must agree, see the module contract).
            n_trials: trial budget (trials are numbered 0..n_trials-1).
            batch_fn: vectorized evaluator for whole batches.
            batch_size: trials per batch (also the early-stop granularity).
            workers: > 1 runs batches in a process pool; results and any
                early stop are identical to the serial run.
            target_halfwidth: stop at the first batch boundary where the
                confidence halfwidth is at or below this (after at least
                *min_trials* trials).
            min_trials: floor before early stopping may trigger.
        """
        if trial_fn is None and batch_fn is None:
            raise ConfigurationError("need a trial_fn or a batch_fn")
        if n_trials <= 0:
            raise ConfigurationError("n_trials must be positive")
        if batch_size <= 0:
            raise ConfigurationError("batch_size must be positive")
        chunks = [
            list(range(start, min(start + batch_size, n_trials)))
            for start in range(0, n_trials, batch_size)
        ]
        outcomes: List[float] = []
        stopped_early = False

        def should_stop() -> bool:
            if target_halfwidth is None or len(outcomes) < max(min_trials, 2):
                return False
            return self._summarize(outcomes).halfwidth <= target_halfwidth

        tel = telemetry.current()
        if workers > 1:
            # Campaign constants (evaluators may close over large payload
            # arrays) ship once per worker via the initializer; each task
            # then carries only its trial indices.
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(
                    self.experiment,
                    self.master_seed,
                    trial_fn if batch_fn is None else None,
                    batch_fn,
                ),
            ) as pool:
                futures = [pool.submit(_worker_batch, chunk) for chunk in chunks]
                # Consume in submission order so early stopping lands on
                # the same batch boundary as the serial path — and so batch
                # snapshots merge in the serial path's order.
                for future in futures:
                    if stopped_early:
                        future.cancel()
                        continue
                    batch_outcomes, snapshot = future.result()
                    tel.merge(snapshot)
                    outcomes.extend(batch_outcomes)
                    if should_stop():
                        stopped_early = True
        else:
            for chunk in chunks:
                batch_outcomes, snapshot = _evaluate_batch(
                    self.experiment,
                    self.master_seed,
                    trial_fn if batch_fn is None else None,
                    batch_fn,
                    chunk,
                )
                tel.merge(snapshot)
                outcomes.extend(batch_outcomes)
                if should_stop():
                    stopped_early = True
                    break
        stopped_early = stopped_early and len(outcomes) < n_trials
        if stopped_early:
            tel.count("montecarlo.early_stops")
        return MonteCarloResult(
            experiment=self.experiment,
            master_seed=self.master_seed,
            outcomes=np.asarray(outcomes, dtype=float),
            summary=self._summarize(outcomes),
            stopped_early=stopped_early,
        )
