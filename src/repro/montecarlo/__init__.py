"""Deterministic, batched Monte-Carlo infrastructure for the experiments.

Three pieces:

* :mod:`repro.montecarlo.seeding` — per-trial RNG streams addressed by
  ``(master seed, experiment key, trial index)``, bit-identical under any
  execution order or process partition;
* :mod:`repro.montecarlo.stats` — Wilson/normal confidence summaries of
  trial outcomes;
* :mod:`repro.montecarlo.engine` — the campaign runner: batch-vectorized
  trial evaluation, optional process pool, CI-targeted early stop.

See DESIGN.md ("The Monte-Carlo engine") for the seeding scheme and the
batching contract.
"""

from repro.montecarlo.engine import (
    BatchFn,
    MonteCarloEngine,
    MonteCarloResult,
    TrialFn,
)
from repro.montecarlo.seeding import (
    experiment_sequence,
    trial_rng,
    trial_rngs,
    trial_seed,
    trial_sequence,
)
from repro.montecarlo.stats import (
    TrialSummary,
    Z_95,
    summarize_mean,
    summarize_proportion,
    wilson_interval,
)

__all__ = [
    "BatchFn",
    "MonteCarloEngine",
    "MonteCarloResult",
    "TrialFn",
    "TrialSummary",
    "Z_95",
    "experiment_sequence",
    "summarize_mean",
    "summarize_proportion",
    "trial_rng",
    "trial_rngs",
    "trial_seed",
    "trial_sequence",
    "wilson_interval",
]
