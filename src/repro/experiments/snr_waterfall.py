"""Extension experiment: receiver waterfall vs the paper's minimum-SNR column.

Table IV quotes the minimum SNR per MCS (11-31 dB).  This experiment
measures the actual frame delivery of this library's receiver across SNR
for each mode — with soft-decision decoding — and reports the lowest SNR
with >= 90 % delivery.  The measured thresholds should sit at or below the
paper's quoted minima (which include real-hardware implementation margins),
and preserve their ordering.

Trials run on :class:`repro.montecarlo.MonteCarloEngine`: each (MCS, SNR)
point is its own experiment key, every trial draws payload and noise from
its addressed stream, and the whole batch moves through the transmitter,
:func:`repro.channel.batch.awgn_batch` and the batched receiver in stacked
passes — bit-identical to the scalar per-trial loop at any batch size.
"""

from __future__ import annotations

from functools import partial
from typing import List, Sequence

import numpy as np

from repro.channel.batch import awgn_batch, stack_waveforms
from repro.experiments.base import ExperimentResult
from repro.montecarlo import MonteCarloEngine
from repro.utils.bits import random_bits
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter

#: Sample index of the SIGNAL symbol in a clean locally-generated frame.
_DATA_START = 320


def _delivery_batch(
    rngs: List[np.random.Generator],
    indices: Sequence[int],
    mcs_name: str,
    snr_db: float,
    psdu_octets: int,
    soft: bool,
) -> List[float]:
    """One batch of delivery trials, vectorized end to end.

    Per trial: draw a payload from the trial stream, then noise from the
    same stream — the exact draw order of the scalar path — but transmit,
    add noise and decode as one stacked batch.
    """
    tx = WifiTransmitter(mcs_name)
    rx = WifiReceiver()
    psdus = [random_bits(8 * psdu_octets, rng) for rng in rngs]
    frames = tx.transmit_frames(psdus)
    noisy = awgn_batch(
        stack_waveforms([f.waveform for f in frames]), snr_db, rngs
    )
    receptions = rx.receive_frames(
        list(noisy), data_start=_DATA_START, soft=soft, on_error="none"
    )
    return [
        float(r is not None and np.array_equal(r.psdu_bits, psdu))
        for r, psdu in zip(receptions, psdus)
    ]


def _delivery_trial(
    rng: np.random.Generator,
    index: int,
    mcs_name: str,
    snr_db: float,
    psdu_octets: int,
    soft: bool,
) -> float:
    """Scalar reference trial (kept for the batch-equivalence tests)."""
    return _delivery_batch([rng], [index], mcs_name, snr_db, psdu_octets, soft)[0]


def delivery_at_snr(
    mcs_name: str,
    snr_db: float,
    n_frames: int = 10,
    psdu_octets: int = 50,
    seed: int = 7,
    soft: bool = True,
    workers: int = 0,
) -> float:
    """Fraction of frames fully delivered at one SNR point."""
    return delivery_summary(
        mcs_name, snr_db, n_frames, psdu_octets, seed, soft, workers
    ).summary.mean


def delivery_summary(
    mcs_name: str,
    snr_db: float,
    n_frames: int = 10,
    psdu_octets: int = 50,
    seed: int = 7,
    soft: bool = True,
    workers: int = 0,
):
    """Full Monte-Carlo result (Wilson CI included) for one SNR point."""
    engine = MonteCarloEngine(
        f"snr_waterfall/{mcs_name}/{snr_db:.2f}dB/{psdu_octets}o/soft={soft}",
        master_seed=seed,
        kind="proportion",
    )
    return engine.run(
        partial(
            _delivery_trial,
            mcs_name=mcs_name,
            snr_db=snr_db,
            psdu_octets=psdu_octets,
            soft=soft,
        ),
        n_frames,
        batch_fn=partial(
            _delivery_batch,
            mcs_name=mcs_name,
            snr_db=snr_db,
            psdu_octets=psdu_octets,
            soft=soft,
        ),
        workers=workers,
    )


def measured_threshold(
    mcs_name: str,
    n_frames: int = 10,
    target: float = 0.9,
    step_db: float = 1.0,
    seed: int = 7,
) -> float:
    """Lowest SNR (on a *step_db* grid) with delivery >= *target*."""
    mcs = get_mcs(mcs_name)
    snr = mcs.min_snr_db - 10.0
    while snr < mcs.min_snr_db + 8.0:
        if delivery_at_snr(mcs_name, snr, n_frames, seed=seed) >= target:
            return round(snr, 1)
        snr += step_db
    return float("nan")


def run(
    mcs_names: Sequence[str] = PAPER_MCS_NAMES,
    n_frames: int = 8,
    master_seed: int = 7,
) -> ExperimentResult:
    """Thresholds for every paper MCS against the Table IV column."""
    result = ExperimentResult(
        experiment_id="Extension (waterfall)",
        title="Receiver 90%-delivery SNR vs paper Table IV minimum (soft decoding)",
        columns=["mcs", "paper min SNR", "measured 90% SNR", "margin dB"],
    )
    for name in mcs_names:
        mcs = get_mcs(name)
        measured = measured_threshold(name, n_frames, seed=master_seed)
        result.add_row(name, mcs.min_snr_db, measured, mcs.min_snr_db - measured)
    result.notes.append(
        "measured thresholds sit below the paper's quoted minima (which "
        "carry hardware margins) and preserve their ordering across modes"
    )
    return result
