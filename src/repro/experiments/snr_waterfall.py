"""Extension experiment: receiver waterfall vs the paper's minimum-SNR column.

Table IV quotes the minimum SNR per MCS (11-31 dB).  This experiment
measures the actual frame delivery of this library's receiver across SNR
for each mode — with soft-decision decoding — and reports the lowest SNR
with >= 90 % delivery.  The measured thresholds should sit at or below the
paper's quoted minima (which include real-hardware implementation margins),
and preserve their ordering.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.channel.awgn import awgn
from repro.experiments.base import ExperimentResult
from repro.utils.bits import random_bits
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter


def delivery_at_snr(
    mcs_name: str,
    snr_db: float,
    n_frames: int = 10,
    psdu_octets: int = 50,
    seed: int = 7,
    soft: bool = True,
) -> float:
    """Fraction of frames fully delivered at one SNR point."""
    rng = np.random.default_rng(seed)
    tx = WifiTransmitter(mcs_name)
    rx = WifiReceiver()
    delivered = 0
    for _ in range(n_frames):
        psdu = random_bits(8 * psdu_octets, rng)
        noisy = awgn(tx.transmit(psdu).waveform, snr_db, rng)
        try:
            reception = rx.receive(noisy, data_start=320, soft=soft)
            delivered += int(np.array_equal(reception.psdu_bits, psdu))
        except Exception:
            pass
    return delivered / n_frames


def measured_threshold(
    mcs_name: str,
    n_frames: int = 10,
    target: float = 0.9,
    step_db: float = 1.0,
    seed: int = 7,
) -> float:
    """Lowest SNR (on a *step_db* grid) with delivery >= *target*."""
    mcs = get_mcs(mcs_name)
    snr = mcs.min_snr_db - 10.0
    while snr < mcs.min_snr_db + 8.0:
        if delivery_at_snr(mcs_name, snr, n_frames, seed=seed) >= target:
            return round(snr, 1)
        snr += step_db
    return float("nan")


def run(
    mcs_names: Sequence[str] = PAPER_MCS_NAMES,
    n_frames: int = 8,
) -> ExperimentResult:
    """Thresholds for every paper MCS against the Table IV column."""
    result = ExperimentResult(
        experiment_id="Extension (waterfall)",
        title="Receiver 90%-delivery SNR vs paper Table IV minimum (soft decoding)",
        columns=["mcs", "paper min SNR", "measured 90% SNR", "margin dB"],
    )
    for name in mcs_names:
        mcs = get_mcs(name)
        measured = measured_threshold(name, n_frames)
        result.add_row(name, mcs.min_snr_db, measured, mcs.min_snr_db - measured)
    result.notes.append(
        "measured thresholds sit below the paper's quoted minima (which "
        "carry hardware margins) and preserve their ordering across modes"
    )
    return result
