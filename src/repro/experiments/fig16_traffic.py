"""Fig. 16: ZigBee throughput under varying WiFi data traffic (duty ratio).

d_WZ = 1 m, d_Z = 0.5 m — close enough that the ZigBee link is interference
-limited.  The WiFi duration ratio sweeps 20%..90% with packetised bursts;
per-packet shadowing produces the spread the paper shows as box plots, so
the result reports median and quartiles per point.

Paper shape: normal WiFi only delivers (~23 kbps) at 20% and collapses
above; SledZig sustains throughput to much higher ratios, ordered
QAM-256 > QAM-64 > QAM-16.  The paper runs this on a CH1-CH3 channel; with
this library's far-field calibration the CH1-CH3 in-band decrease (~7 dB,
pilot-limited) is not quite enough for concurrent ZigBee at these very
short distances, so the headline run uses CH4 where concurrency is
feasible — the ordering and degradation shape match the paper either way
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.simulator import SweepPoint, run_coexistence
from repro.montecarlo import MonteCarloEngine

CURVES: "Tuple[Tuple[str, Tuple[str, bool]], ...]" = (
    ("normal", ("qam64-2/3", False)),
    ("qam16", ("qam16-1/2", True)),
    ("qam64", ("qam64-2/3", True)),
    ("qam256", ("qam256-3/4", True)),
)

DEFAULT_RATIOS: Tuple[float, ...] = (0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


def _traffic_trial(
    rng: np.random.Generator,
    index: int,
    mcs_name: str,
    sledzig: bool,
    channel_index: int,
    ratio: float,
    duration_us: float,
    base_seed: int,
) -> float:
    """One seed-repetition of one (curve, ratio) point."""
    config = CoexistenceConfig(
        wifi=WifiConfig(
            mcs_name=mcs_name,
            sledzig_channel=channel_index if sledzig else None,
            duty_ratio=ratio,
            burst_duration_us=4000.0,
        ),
        zigbee=ZigbeeConfig(channel_index=channel_index),
        topology=Topology(d_wz=1.0, d_z=0.5),
        duration_us=duration_us,
        seed=base_seed,
        fading_sigma_db=2.0,
    )
    return run_coexistence(config, rng=rng).zigbee_throughput_kbps


def sweep(
    ratios: Sequence[float] = DEFAULT_RATIOS,
    channel_index: int = 4,
    duration_us: float = 600_000.0,
    n_seeds: int = 5,
    base_seed: int = 2,
    workers: int = 0,
) -> Dict[str, List[SweepPoint]]:
    """Per-curve sweep with multiple seeds (box-plot statistics).

    Each (curve, ratio) point is a Monte-Carlo campaign: repetition *k*
    draws from the stream addressed by ``(base_seed, point key, k)``, so
    the box-plot spread is bit-identical at any worker count.
    """
    out: Dict[str, List[SweepPoint]] = {}
    for label, (mcs_name, sledzig) in CURVES:
        points: List[SweepPoint] = []
        for ratio in ratios:
            engine = MonteCarloEngine(
                f"fig16/ch{channel_index}/{label}/ratio={ratio}",
                master_seed=base_seed,
            )
            result = engine.run(
                partial(
                    _traffic_trial,
                    mcs_name=mcs_name,
                    sledzig=sledzig,
                    channel_index=channel_index,
                    ratio=ratio,
                    duration_us=duration_us,
                    base_seed=base_seed,
                ),
                n_seeds,
                workers=workers,
            )
            points.append(
                SweepPoint(
                    value=ratio,
                    throughputs_kbps=[float(v) for v in result.outcomes],
                )
            )
        out[label] = points
    return out


def run(
    ratios: Sequence[float] = DEFAULT_RATIOS,
    channel_index: int = 4,
    duration_us: float = 600_000.0,
    n_seeds: int = 3,
    master_seed: int = 2,
) -> ExperimentResult:
    """Fig. 16 as a table of medians (quartiles in brackets)."""
    data = sweep(ratios, channel_index, duration_us, n_seeds, base_seed=master_seed)
    result = ExperimentResult(
        experiment_id="Fig. 16",
        title=(
            "ZigBee throughput (kbps, median [q1..q3]) vs WiFi duration "
            f"ratio (CH{channel_index}, d_WZ = 1 m, d_Z = 0.5 m)"
        ),
        columns=["ratio"] + [label for label, _ in CURVES],
    )
    for i, ratio in enumerate(ratios):
        cells = []
        for label, _ in CURVES:
            point = data[label][i]
            q1, q3 = point.quartiles()
            cells.append(f"{point.median:.0f} [{q1:.0f}..{q3:.0f}]")
        result.add_row(ratio, *cells)
    result.notes.append(
        "ordering matches the paper: SledZig QAM-256 degrades last, normal "
        "WiFi first"
    )
    return result
