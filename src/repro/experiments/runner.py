"""Run every paper experiment and print the tables (CLI entry point).

Usage::

    python -m repro.experiments.runner            # everything
    python -m repro.experiments.runner fig12 t4   # a subset
    sledzig-experiments --quick                   # shorter MAC sweeps

Each experiment regenerates one table or figure of the paper; see
EXPERIMENTS.md for the paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Callable, Dict, List

from repro.experiments import (
    ablations,
    fig04_scenario,
    fig05_spectrum,
    fig11_subcarriers,
    fig12_rssi_decrease,
    fig13_zigbee_rssi,
    fig14_dwz,
    fig15_dz,
    fig16_traffic,
    fig17_wifi_rssi,
    table2_positions,
    table3_extra_bits,
    table4_throughput_loss,
    ext40mhz,
    snr_waterfall,
    theory,
    xtech_collision,
)
from repro.experiments.base import ExperimentResult


def _fig14a(quick: bool) -> ExperimentResult:
    distances = (2, 3, 3.5, 4, 4.5, 5, 7, 8.5) if quick else fig14_dwz.DEFAULT_DISTANCES
    return fig14_dwz.run(channel_index=3, distances=distances,
                         duration_us=200_000.0 if quick else 400_000.0)


def _fig14b(quick: bool) -> ExperimentResult:
    distances = (1, 1.5, 2, 3, 4, 5, 6) if quick else (1, 1.5, 2, 2.5, 3, 4, 5, 6, 7)
    return fig14_dwz.run(channel_index=4, distances=distances,
                         duration_us=200_000.0 if quick else 400_000.0)


def registry(quick: bool = False) -> Dict[str, Callable[[], ExperimentResult]]:
    """All experiments keyed by short name."""
    return {
        "theory": theory.run,
        "t2": table2_positions.run,
        "t3": table3_extra_bits.run,
        "t4": table4_throughput_loss.run,
        "fig4": lambda: fig04_scenario.run(
            duration_us=200_000.0 if quick else 400_000.0
        ),
        "fig5": fig05_spectrum.run,
        "fig11": fig11_subcarriers.run,
        "fig12": fig12_rssi_decrease.run,
        "fig13": fig13_zigbee_rssi.run,
        "fig14a": lambda: _fig14a(quick),
        "fig14b": lambda: _fig14b(quick),
        "fig15": lambda: fig15_dz.run(
            duration_us=200_000.0 if quick else 400_000.0
        ),
        "fig16": lambda: fig16_traffic.run(
            duration_us=300_000.0 if quick else 600_000.0,
            n_seeds=2 if quick else 3,
        ),
        "fig17": fig17_wifi_rssi.run,
        "xtech": lambda: xtech_collision.run(n_frames=4 if quick else 8),
        "ext40": ext40mhz.run,
        "waterfall": lambda: snr_waterfall.run(n_frames=5 if quick else 10),
        "ablation-span": ablations.span_ablation,
        "ablation-solver": ablations.solver_ablation,
        "ablation-preamble": lambda: ablations.preamble_ablation(
            duration_us=150_000.0 if quick else 300_000.0
        ),
        "ablation-cca": lambda: ablations.cca_threshold_ablation(
            duration_us=150_000.0 if quick else 300_000.0
        ),
    }


def run_experiments(
    names: List[str], quick: bool = False, as_json: bool = False
) -> List[ExperimentResult]:
    """Execute the named experiments (all when *names* is empty)."""
    reg = registry(quick)
    selected = names or list(reg)
    unknown = [n for n in selected if n not in reg]
    if unknown:
        raise SystemExit(f"unknown experiments {unknown}; choose from {list(reg)}")
    results = []
    for name in selected:
        start = time.time()
        result = reg[name]()
        if as_json:
            print(json.dumps({
                "experiment": name,
                "id": result.experiment_id,
                "title": result.title,
                "columns": result.columns,
                "rows": [list(map(_jsonable, row)) for row in result.rows],
                "notes": result.notes,
                "seconds": round(time.time() - start, 2),
            }))
        else:
            print(result.format_table())
            print(f"  [{name} in {time.time() - start:.1f}s]")
            print()
        results.append(result)
    return results


def _jsonable(value):
    """Coerce numpy scalars and other leaves into JSON-safe values."""
    try:
        import numpy as np

        if isinstance(value, np.generic):
            return value.item()
    except ImportError:
        pass
    return value


def main(argv: "List[str] | None" = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="subset to run")
    parser.add_argument("--quick", action="store_true", help="shorter MAC sweeps")
    parser.add_argument("--json", action="store_true", help="one JSON object per line")
    args = parser.parse_args(argv)
    run_experiments(args.experiments, quick=args.quick, as_json=args.json)
    return 0


if __name__ == "__main__":
    sys.exit(main())
