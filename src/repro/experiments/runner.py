"""Run every paper experiment and print the tables (CLI entry point).

Usage::

    python -m repro.experiments.runner             # everything
    python -m repro.experiments.runner fig12 t4    # a subset
    sledzig-experiments --quick                    # shorter MAC sweeps
    sledzig-experiments --workers 4                # parallel across processes

Result tables (or ``--json`` lines) go to stdout; progress and timing go to
a module logger on stderr (``--verbose`` raises it to DEBUG).  Each
experiment regenerates one table or figure of the paper; see EXPERIMENTS.md
for the paper-vs-measured record.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Tuple

from repro import telemetry
from repro.experiments import (
    ablations,
    coexistence,
    ctc_tradeoff,
    fig04_scenario,
    fig05_spectrum,
    fig11_subcarriers,
    fig12_rssi_decrease,
    fig13_zigbee_rssi,
    fig14_dwz,
    fig15_dz,
    fig16_traffic,
    fig17_wifi_rssi,
    gateway_load,
    table2_positions,
    table3_extra_bits,
    table4_throughput_loss,
    ext40mhz,
    robustness_waterfall,
    snr_waterfall,
    streaming_capture,
    theory,
    xtech_collision,
)
from repro.experiments.base import ExperimentResult
from repro.utils.serialization import jsonable

logger = logging.getLogger(__name__)


def _fig14a(quick: bool, seed: "int | None") -> ExperimentResult:
    distances = (2, 3, 3.5, 4, 4.5, 5, 7, 8.5) if quick else fig14_dwz.DEFAULT_DISTANCES
    return fig14_dwz.run(channel_index=3, distances=distances,
                         duration_us=200_000.0 if quick else 400_000.0,
                         **_seed_kw(seed))


def _fig14b(quick: bool, seed: "int | None") -> ExperimentResult:
    distances = (1, 1.5, 2, 3, 4, 5, 6) if quick else (1, 1.5, 2, 2.5, 3, 4, 5, 6, 7)
    return fig14_dwz.run(channel_index=4, distances=distances,
                         duration_us=200_000.0 if quick else 400_000.0,
                         **_seed_kw(seed))


def _seed_kw(seed: "int | None") -> Dict[str, int]:
    """``master_seed=...`` kwargs when a seed override is given."""
    return {} if seed is None else {"master_seed": seed}


def registry(
    quick: bool = False, master_seed: "int | None" = None
) -> Dict[str, Callable[[], ExperimentResult]]:
    """All experiments keyed by short name.

    *master_seed* overrides the default master seed of every stochastic
    experiment (the deterministic tables/figures ignore it); with the same
    seed, results are bit-identical at any ``--workers`` count.
    """
    return {
        "theory": theory.run,
        "t2": table2_positions.run,
        "t3": table3_extra_bits.run,
        "t4": table4_throughput_loss.run,
        "fig4": lambda: fig04_scenario.run(
            duration_us=200_000.0 if quick else 400_000.0
        ),
        "fig5": fig05_spectrum.run,
        "fig11": fig11_subcarriers.run,
        "fig12": lambda: fig12_rssi_decrease.run(
            **({} if master_seed is None else {"seed": master_seed})
        ),
        "fig13": fig13_zigbee_rssi.run,
        "fig14a": lambda: _fig14a(quick, master_seed),
        "fig14b": lambda: _fig14b(quick, master_seed),
        "fig15": lambda: fig15_dz.run(
            duration_us=200_000.0 if quick else 400_000.0,
            **_seed_kw(master_seed),
        ),
        "fig16": lambda: fig16_traffic.run(
            duration_us=300_000.0 if quick else 600_000.0,
            n_seeds=2 if quick else 3,
            **_seed_kw(master_seed),
        ),
        "fig17": fig17_wifi_rssi.run,
        "xtech": lambda: xtech_collision.run(
            n_frames=4 if quick else 8, **_seed_kw(master_seed)
        ),
        "ext40": ext40mhz.run,
        # Quick mode runs a single load point so the manifest's telemetry
        # counters and its slo object describe the same traffic.
        "gateway": lambda: gateway_load.run(
            sweep=((4, 8, 8),) if quick else gateway_load.DEFAULT_SWEEP,
            **_seed_kw(master_seed),
        ),
        "streamcap": lambda: streaming_capture.run(
            frame_counts=(10, 30) if quick else (25, 100),
            **_seed_kw(master_seed),
        ),
        "waterfall": lambda: snr_waterfall.run(
            n_frames=5 if quick else 10, **_seed_kw(master_seed)
        ),
        "robustness": lambda: robustness_waterfall.run(
            axes=("cfo_ppm", "multipath_taps") if quick
            else ("cfo_ppm", "multipath_taps", "phase_noise_mrad"),
            n_frames=4 if quick else 8,
            **_seed_kw(master_seed),
        ),
        "coexistence": lambda: coexistence.run(
            quick=quick,
            duration_us=100_000.0 if quick else 150_000.0,
            **_seed_kw(master_seed),
        ),
        # Quick mode trims the sweep but keeps the acceptance point
        # (lowest depth, highest rate) so the manifest's ctc object is
        # checked under the same contract either way.
        "ctc": lambda: ctc_tradeoff.run(
            depths=(1, 2) if quick else ctc_tradeoff.DEFAULT_DEPTHS,
            rates=(1, 4) if quick else ctc_tradeoff.DEFAULT_RATES,
            n_trials=8 if quick else 24,
            n_bss=2 if quick else 3,
            n_sensors=12 if quick else 24,
            duration_us=100_000.0 if quick else 200_000.0,
            **_seed_kw(master_seed),
        ),
        "ablation-span": ablations.span_ablation,
        "ablation-solver": ablations.solver_ablation,
        "ablation-preamble": lambda: ablations.preamble_ablation(
            duration_us=150_000.0 if quick else 300_000.0
        ),
        "ablation-cca": lambda: ablations.cca_threshold_ablation(
            duration_us=150_000.0 if quick else 300_000.0
        ),
    }


def _run_one(
    name: str, quick: bool, master_seed: "int | None" = None
) -> Tuple[ExperimentResult, float, telemetry.Snapshot]:
    """Execute one registered experiment -> (result, seconds, snapshot).

    Module-level (rather than the registry's lambdas) so worker processes
    can run experiments by *name* — lambdas do not pickle.  The experiment
    runs under a fresh telemetry collector; the caller merges the returned
    snapshot in *names* order, so the parent's merged metrics are
    bit-identical (counters/gauges) at any ``--workers`` count.
    """
    start = time.perf_counter()
    with telemetry.collect() as tel:
        result = registry(quick, master_seed)[name]()
    return result, time.perf_counter() - start, tel.snapshot()


def _report(name: str, result: ExperimentResult, seconds: float,
            as_json: bool) -> None:
    """Emit one experiment's table (stdout) and timing (logger)."""
    if as_json:
        print(json.dumps({
            "experiment": name,
            "id": result.experiment_id,
            "title": result.title,
            "columns": result.columns,
            "rows": [jsonable(row) for row in result.rows],
            "notes": result.notes,
            "seconds": round(seconds, 2),
        }))
    else:
        print(result.format_table())
        print()
    n_rows = len(result.rows)
    rate = n_rows / seconds if seconds > 0 else float("inf")
    logger.info(
        "%s (%s) finished: %d rows in %.2fs (%.1f rows/s)",
        name, result.experiment_id, n_rows, seconds, rate,
    )


def _experiment_config(
    name: str, quick: bool, master_seed: "int | None"
) -> Dict[str, object]:
    """The effective per-experiment configuration the manifest digests."""
    from repro import kernels

    return {
        "experiment": name,
        "quick": quick,
        "seed": master_seed,
        # Kernel provenance: which backend ran the hot kernels.  Part of
        # the digested config because swapping backends is a legitimate
        # run-to-run difference worth surfacing in manifest diffs (even
        # though conformance holds them bit-identical).
        "kernel_backend": kernels.get_backend(),
    }


def run_experiments(
    names: List[str],
    quick: bool = False,
    as_json: bool = False,
    workers: int = 0,
    master_seed: "int | None" = None,
    metrics_out: "str | None" = None,
) -> List[ExperimentResult]:
    """Execute the named experiments (all when *names* is empty).

    A failing experiment no longer takes the run down with it: its error
    is logged (and recorded in the manifest), every other experiment's
    table is still emitted, and a nonzero ``SystemExit`` naming the failed
    experiments is raised at the end.

    Args:
        names: registry keys to run; empty means every experiment.
        quick: shrink the MAC sweeps for faster runs.
        as_json: emit one JSON object per experiment instead of tables.
        workers: if > 1, run experiments across that many worker
            processes; output order still follows *names*.
        master_seed: override the stochastic experiments' master seed;
            results with the same seed are bit-identical at any *workers*
            count (Monte-Carlo streams are addressed, not consumed in
            sequence).
        metrics_out: append one JSON manifest line per experiment to this
            path (id, seed, config digest, per-stage timings, drop-cause
            table; see EXPERIMENTS.md).
    """
    reg = registry(quick, master_seed)
    selected = names or list(reg)
    unknown = [n for n in selected if n not in reg]
    if unknown:
        raise SystemExit(f"unknown experiments {unknown}; choose from {list(reg)}")
    wall_start = time.perf_counter()
    results: List[ExperimentResult] = []
    failures: List[Tuple[str, str]] = []
    parent_tel = telemetry.current()

    def _finish(name: str, start: float,
                outcome: "Tuple[ExperimentResult, float, telemetry.Snapshot] | Exception") -> None:
        config = _experiment_config(name, quick, master_seed)
        if isinstance(outcome, Exception):
            error = f"{type(outcome).__name__}: {outcome}"
            logger.error("experiment %s failed: %s", name, error)
            failures.append((name, error))
            if metrics_out:
                telemetry.append_line(metrics_out, telemetry.run_record(
                    name, config=config, seconds=time.perf_counter() - start,
                    status="failed", error=error,
                ))
            return
        result, seconds, snapshot = outcome
        parent_tel.merge(snapshot)
        _report(name, result, seconds, as_json)
        results.append(result)
        if metrics_out:
            telemetry.append_line(metrics_out, telemetry.run_record(
                name, config=config, seconds=seconds, snapshot=snapshot,
                experiment_id=result.experiment_id, title=result.title,
                extra=result.manifest_extra,
            ))

    if workers > 1:
        logger.info("running %d experiments on %d workers", len(selected), workers)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_one, name, quick, master_seed)
                for name in selected
            ]
            for name, future in zip(selected, futures):
                start = time.perf_counter()
                try:
                    outcome = future.result()
                except Exception as exc:  # deliberate per-experiment boundary
                    outcome = exc
                _finish(name, start, outcome)
    else:
        for name in selected:
            logger.debug("starting %s", name)
            start = time.perf_counter()
            try:
                outcome = _run_one(name, quick, master_seed)
            except Exception as exc:  # deliberate per-experiment boundary
                outcome = exc
            _finish(name, start, outcome)
    wall = time.perf_counter() - wall_start
    logger.info(
        "%d/%d experiments in %.2fs wall-clock",
        len(results), len(selected), wall,
    )
    if failures:
        summary = "; ".join(f"{name} ({error})" for name, error in failures)
        raise SystemExit(f"{len(failures)} experiment(s) failed: {summary}")
    return results


def main(argv: "List[str] | None" = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("experiments", nargs="*", help="subset to run")
    parser.add_argument("--quick", action="store_true", help="shorter MAC sweeps")
    parser.add_argument("--json", action="store_true", help="one JSON object per line")
    parser.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="run experiments across N worker processes (default: in-process)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="S",
        help="master seed for the stochastic experiments; the same seed "
             "reproduces every figure bit-exactly at any --workers count",
    )
    parser.add_argument(
        "--metrics-out", type=str, default=None, metavar="PATH",
        help="append one JSON manifest line per experiment (id, seed, config "
             "digest, per-stage timings, drop-cause table) to PATH",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="debug-level progress on stderr"
    )
    args = parser.parse_args(argv)
    logging.basicConfig(
        stream=sys.stderr,
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s: %(message)s",
    )
    run_experiments(
        args.experiments, quick=args.quick, as_json=args.json,
        workers=args.workers, master_seed=args.seed,
        metrics_out=args.metrics_out,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
