"""Extension experiment: long-capture streaming decode at constant memory.

Not a numbered paper figure — an operational validation of the streaming
receive layer.  A long recording (many SledZig frames separated by idle
gaps, optionally with AWGN) is decoded through
:class:`repro.sledzig.streaming.SledZigStreamReceiver` in bounded chunks,
and the table reports what a deployment cares about: frames recovered,
typed drops, and the sample ring's high-water mark against its fixed
capacity.

Expected outcome: the high-water mark depends on the longest frame plus
the chunk size — *not* on the capture length — so doubling the recording
leaves peak memory unchanged.  The constant-memory test pins exactly that
via the ``stream.ring.sledzig.high_water`` telemetry gauge, which also
lands in the ``--metrics-out`` manifest of every run.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.sledzig.pipeline import encode_frames
from repro.sledzig.streaming import SledZigStreamReceiver
from repro.streaming import DropEvent, FrameEvent, iter_chunks

DEFAULT_MCS = "qam16-1/2"
DEFAULT_CHANNEL = "CH2"


def build_capture(
    n_frames: int,
    payload_octets: int = 40,
    gap_samples: int = 600,
    mcs: str = DEFAULT_MCS,
    channel: str = DEFAULT_CHANNEL,
    snr_db: "float | None" = None,
    seed: int = 0,
) -> Tuple[np.ndarray, List[bytes]]:
    """A long recording: *n_frames* SledZig frames separated by idle gaps.

    Payloads are drawn from a seeded stream; with *snr_db* set, AWGN is
    added over the whole capture (gaps included, like a real front end).
    Returns the capture and the transmitted payloads.
    """
    rng = np.random.default_rng(seed)
    payloads = [
        bytes(rng.integers(0, 256, size=payload_octets, dtype=np.uint8))
        for _ in range(n_frames)
    ]
    waveforms = encode_frames(payloads, mcs, channel)
    gap = np.zeros(gap_samples, dtype=np.complex128)
    pieces: List[np.ndarray] = [gap]
    for waveform in waveforms:
        pieces.append(waveform)
        pieces.append(gap)
    capture = np.concatenate(pieces)
    if snr_db is not None:
        from repro.channel.awgn import awgn

        capture = awgn(capture, snr_db, np.random.default_rng(seed + 1))
    return capture, payloads


def decode_capture(
    capture: np.ndarray,
    payloads: Sequence[bytes],
    chunk_samples: int,
    channel: str = DEFAULT_CHANNEL,
) -> Tuple[int, int, int, int]:
    """Stream one capture through the SledZig chain in fixed-size chunks.

    Returns ``(frames_ok, frames_wrong, drops, ring_high_water)`` where
    ``frames_ok`` counts payload-exact recoveries.
    """
    receiver = SledZigStreamReceiver(channel=channel)
    events = receiver.pipeline.run(iter_chunks(capture, chunk_samples))
    recovered = [e.result.payload for e in events if isinstance(e, FrameEvent)]
    drops = sum(1 for e in events if isinstance(e, DropEvent))
    ok = sum(1 for got, sent in zip(recovered, payloads) if got == sent)
    wrong = len(recovered) - ok
    return ok, wrong, drops, receiver.sync.ring.high_water


def run(
    frame_counts: Sequence[int] = (25, 100),
    chunk_sizes: Sequence[int] = (512, 4096),
    payload_octets: int = 40,
    master_seed: int = 0,
) -> ExperimentResult:
    """The long-capture streaming sweep as a table."""
    result = ExperimentResult(
        experiment_id="Extension",
        title=(
            "Streaming long-capture decode: constant memory across "
            f"capture lengths ({DEFAULT_MCS}, {DEFAULT_CHANNEL})"
        ),
        columns=[
            "frames",
            "capture (samples)",
            "chunk (samples)",
            "decoded",
            "drops",
            "ring high water",
            "ring capacity",
        ],
    )
    capacity = None
    for n_frames in frame_counts:
        capture, payloads = build_capture(
            n_frames, payload_octets=payload_octets, seed=master_seed
        )
        for chunk in chunk_sizes:
            ok, wrong, drops, high_water = decode_capture(
                capture, payloads, chunk
            )
            if capacity is None:
                capacity = SledZigStreamReceiver().sync.ring.capacity
            result.add_row(
                n_frames, capture.size, chunk, ok, drops, high_water, capacity
            )
    result.notes.append(
        "the ring high-water mark tracks the longest frame plus one chunk, "
        "independent of capture length — the constant-memory property the "
        "streaming layer guarantees"
    )
    return result
