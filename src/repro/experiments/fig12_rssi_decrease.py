"""Fig. 12: RSSI at ZigBee under different QAM modulations and channels.

Generates normal and SledZig waveforms for every (QAM, channel) pair and
measures the 2 MHz in-band power in the paper's reported-RSSI domain.
Paper values for comparison: CH1-CH3 drop from about -60 to -64/-66/-68 dB
under QAM-16/64/256, CH4 from about -64 to -70/-75/-78 dB.
"""

from __future__ import annotations

from functools import partial

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.rssi_common import (
    normal_band_db,
    reported_offset_db,
    sledzig_band_db,
)
from repro.montecarlo import MonteCarloEngine

#: The paper's approximate reported values {(mod, group): (normal, sledzig)}.
PAPER_FIG12 = {
    ("qam16", "ch13"): (-60.0, -64.0),
    ("qam64", "ch13"): (-60.0, -66.0),
    ("qam256", "ch13"): (-60.0, -68.0),
    ("qam16", "ch4"): (-64.0, -70.0),
    ("qam64", "ch4"): (-64.0, -75.0),
    ("qam256", "ch4"): (-64.0, -78.0),
}

#: Representative MCS per modulation (rate does not affect the spectrum).
_MCS = {"qam16": "qam16-1/2", "qam64": "qam64-2/3", "qam256": "qam256-3/4"}


def _band_trial(
    rng: np.random.Generator,
    index: int,
    measure,
    mcs_name: str,
    channel: str,
    payload_octets: int,
) -> float:
    """One payload realization of one (measure, MCS, channel) cell."""
    return measure(mcs_name, channel, payload_octets, rng=rng)


def _band_mean_db(
    measure,
    kind: str,
    mcs_name: str,
    channel: str,
    payload_octets: int,
    seed: int,
    n_trials: int,
) -> float:
    """Mean in-band power over *n_trials* payload realizations."""
    engine = MonteCarloEngine(
        f"fig12/{kind}/{mcs_name}/{channel}/{payload_octets}o", master_seed=seed
    )
    return engine.run(
        partial(
            _band_trial,
            measure=measure,
            mcs_name=mcs_name,
            channel=channel,
            payload_octets=payload_octets,
        ),
        n_trials,
    ).summary.mean


def run(
    payload_octets: int = 400, seed: int = 13, n_trials: int = 1
) -> ExperimentResult:
    """Measure reported RSSI for all modulation/channel combinations.

    Each cell is a Monte-Carlo mean over *n_trials* payload realizations
    (the in-band power varies by well under a dB across payloads, so the
    default single trial matches the paper's single-capture readings).
    """
    offset = reported_offset_db(seed=seed)
    result = ExperimentResult(
        experiment_id="Fig. 12",
        title="RSSI at ZigBee (1 m): normal vs SledZig",
        columns=[
            "modulation",
            "channel",
            "normal dB",
            "sledzig dB",
            "decrease dB",
            "paper normal",
            "paper sledzig",
        ],
    )
    for modulation, mcs_name in _MCS.items():
        for index in (1, 2, 3, 4):
            channel = f"CH{index}"
            group = "ch4" if index == 4 else "ch13"
            normal = _band_mean_db(
                normal_band_db, "normal", mcs_name, channel, payload_octets,
                seed, n_trials,
            ) + offset
            sled = _band_mean_db(
                sledzig_band_db, "sledzig", mcs_name, channel, payload_octets,
                seed, n_trials,
            ) + offset
            paper = PAPER_FIG12[(modulation, group)]
            result.add_row(
                modulation, channel, normal, sled, normal - sled, paper[0], paper[1]
            )
    result.notes.append(
        "CH1-CH3 are pilot-limited (the pilot cannot be silenced); CH4 "
        "reaches the full constellation decrease minus spectral leakage"
    )
    return result
