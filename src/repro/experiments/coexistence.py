"""Coexistence scenario grids: delivery ratio at network scale.

The paper's sweeps measure one ZigBee link against one WiFi interferer;
this family asks the network-level question: across a grid of scenario
sizes (number of BSSs x number of sensors), what fraction of sensor
packets are delivered

* with the WiFi cells silent (ZigBee-alone baseline),
* with no sensors at all (WiFi-alone baseline — vacuously 1.0, reported
  for its WiFi throughput column),
* with normal WiFi running concurrently,
* with every cell encoding SledZig on the sensors' sub-channel.

Each (grid point, variant) is a Monte-Carlo campaign on
:class:`~repro.montecarlo.MonteCarloEngine`: trial *k* builds the grid
scenario with ``trial_index=k``, so every node draws from a stream
addressed by ``(master seed, scenario name, k, node key)`` and the
summary statistics are bit-identical at any ``--workers`` count.  Trial 0
is re-run in-process for the throughput detail columns (the campaign only
carries the scalar delivery ratio).
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.mac.scenario import ScenarioResult, grid_scenario, run_scenario
from repro.mac.traffic import PoissonTraffic, TrafficSpec
from repro.montecarlo import MonteCarloEngine

#: (n_bss, n_sensors) grid points of the full run.
DEFAULT_GRID: Tuple[Tuple[int, int], ...] = ((1, 20), (2, 60), (3, 120))

#: Smaller grid for ``--quick`` runs.
QUICK_GRID: Tuple[Tuple[int, int], ...] = ((1, 10), (3, 30))

#: Variant labels, in report order.
VARIANTS: Tuple[str, ...] = ("zigbee-alone", "wifi-alone", "concurrent", "sledzig")

#: Default sensor arrival process of the family.
DEFAULT_TRAFFIC: TrafficSpec = PoissonTraffic(rate_per_s=40.0)


def _variant_kwargs(variant: str, n_sensors: int) -> dict:
    """Scenario-builder overrides for one variant."""
    if variant == "zigbee-alone":
        return {"n_sensors": n_sensors, "wifi_saturated": False, "sledzig": False}
    if variant == "wifi-alone":
        return {"n_sensors": 0, "wifi_saturated": True, "sledzig": False}
    if variant == "concurrent":
        return {"n_sensors": n_sensors, "wifi_saturated": True, "sledzig": False}
    if variant == "sledzig":
        return {"n_sensors": n_sensors, "wifi_saturated": True, "sledzig": True}
    raise ValueError(f"unknown variant {variant!r}")


def _point_scenario(
    n_bss: int,
    n_sensors: int,
    variant: str,
    duration_us: float,
    master_seed: int,
    trial_index: int,
    traffic: TrafficSpec,
):
    """The scenario config of one (grid point, variant, trial)."""
    kwargs = _variant_kwargs(variant, n_sensors)
    return grid_scenario(
        n_bss,
        kwargs.pop("n_sensors"),
        name=f"coex/b{n_bss}/s{n_sensors}/{variant}",
        duration_us=duration_us,
        master_seed=master_seed,
        trial_index=trial_index,
        traffic=traffic,
        **kwargs,
    )


def _delivery_trial(
    rng: np.random.Generator,
    index: int,
    *,
    n_bss: int,
    n_sensors: int,
    variant: str,
    duration_us: float,
    master_seed: int,
    traffic: TrafficSpec,
) -> float:
    """One trial -> scalar delivery ratio.

    The engine-provided *rng* is deliberately unused: scenario randomness
    is addressed per node by ``(master_seed, name, index, key)``, which is
    what makes the outcome independent of worker scheduling AND of node
    ordering inside the config.
    """
    del rng
    config = _point_scenario(
        n_bss, n_sensors, variant, duration_us, master_seed, index, traffic
    )
    return run_scenario(config).delivery_ratio


def run_point(
    n_bss: int,
    n_sensors: int,
    variant: str,
    *,
    duration_us: float = 150_000.0,
    n_trials: int = 2,
    master_seed: int = 7,
    workers: int = 0,
    traffic: TrafficSpec = DEFAULT_TRAFFIC,
) -> Tuple["np.ndarray", ScenarioResult]:
    """One grid point's campaign: (per-trial delivery ratios, trial-0 detail)."""
    engine = MonteCarloEngine(
        f"coexistence/b{n_bss}/s{n_sensors}/{variant}", master_seed=master_seed
    )
    campaign = engine.run(
        partial(
            _delivery_trial,
            n_bss=n_bss,
            n_sensors=n_sensors,
            variant=variant,
            duration_us=duration_us,
            master_seed=master_seed,
            traffic=traffic,
        ),
        n_trials,
        workers=workers,
    )
    detail = run_scenario(
        _point_scenario(
            n_bss, n_sensors, variant, duration_us, master_seed, 0, traffic
        )
    )
    return campaign.outcomes, detail


def run(
    grid: Sequence[Tuple[int, int]] = DEFAULT_GRID,
    *,
    duration_us: float = 150_000.0,
    n_trials: int = 2,
    master_seed: int = 7,
    workers: int = 0,
    quick: bool = False,
    traffic: TrafficSpec = DEFAULT_TRAFFIC,
) -> ExperimentResult:
    """The full scenario-grid table (all variants at every grid point)."""
    points = QUICK_GRID if quick else grid
    result = ExperimentResult(
        experiment_id="Coexistence grid",
        title=(
            "Sensor delivery ratio across scenario sizes: baselines vs "
            "concurrent vs SledZig"
        ),
        columns=[
            "bss",
            "sensors",
            "variant",
            "delivery ratio",
            "ci halfwidth",
            "zigbee kbps",
            "wifi mbps",
            "wifi deferrals",
        ],
    )
    for n_bss, n_sensors in points:
        for variant in VARIANTS:
            outcomes, detail = run_point(
                n_bss,
                n_sensors,
                variant,
                duration_us=duration_us,
                n_trials=n_trials,
                master_seed=master_seed,
                workers=workers,
                traffic=traffic,
            )
            mean = float(np.mean(outcomes))
            halfwidth = (
                float(np.std(outcomes, ddof=1) / np.sqrt(len(outcomes)) * 1.96)
                if len(outcomes) > 1
                else 0.0
            )
            result.add_row(
                n_bss,
                n_sensors,
                variant,
                round(mean, 4),
                round(halfwidth, 4),
                round(detail.zigbee_throughput_kbps, 1),
                round(detail.wifi_throughput_mbps, 2),
                sum(c.deferrals for c in detail.cells.values()),
            )
    result.notes.append(
        "delivery ratio is delivered/attempted across all sensors; the "
        "wifi-alone rows are vacuously 1.0 and carry the WiFi throughput "
        "baseline"
    )
    result.notes.append(
        "bit-identical at any --workers count and under any node ordering: "
        "every node's RNG stream is addressed by (seed, scenario, trial, "
        "node key)"
    )
    return result
