"""Shared waveform-RSSI machinery for the Fig. 11/12 experiments.

The paper reports TelosB RSSI readings; this module converts waveform band
powers (dB relative to unit transmit power) into that reported domain by
pinning the normal-WiFi CH1-CH3 reading at 1 m to the calibration anchor
(-60 dB).  One offset, measured once per process, makes every subsequent
measurement directly comparable to the paper's figures.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.channel.calibration import DEFAULT_CALIBRATION
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.sledzig.encoder import SledZigEncoder
from repro.utils.bits import random_bits
from repro.wifi.preamble import PREAMBLE_LENGTH
from repro.wifi.spectral import band_power_db
from repro.wifi.transmitter import WifiTransmitter

#: Samples to skip before measuring (preamble + SIGNAL symbol).
_DATA_START = PREAMBLE_LENGTH + 80


def normal_band_db(
    mcs_name: str,
    channel: "OverlapChannel | str | int",
    payload_octets: int = 150,
    seed: int = 13,
    rng: "np.random.Generator | None" = None,
) -> float:
    """In-band power of a normal WiFi frame's DATA portion (unit-power dB).

    *rng* (when given) supplies the payload draw — the Monte-Carlo path
    threads the trial's addressed stream here; *seed* is the legacy scalar
    entry point.
    """
    ch = get_channel(channel)
    rng = rng if rng is not None else np.random.default_rng(seed)
    frame = WifiTransmitter(mcs_name).transmit(random_bits(8 * payload_octets, rng))
    return band_power_db(frame.waveform[_DATA_START:], ch.center_offset_hz, 2e6)


def sledzig_band_db(
    mcs_name: str,
    channel: "OverlapChannel | str | int",
    payload_octets: int = 150,
    seed: int = 13,
    rng: "np.random.Generator | None" = None,
) -> float:
    """In-band power of a SledZig frame's DATA portion (unit-power dB)."""
    ch = get_channel(channel)
    rng = rng if rng is not None else np.random.default_rng(seed)
    encoder = SledZigEncoder(mcs_name, ch)
    result = encoder.encode(random_bits(8 * payload_octets, rng))
    frame = WifiTransmitter(mcs_name).transmit_scrambled_field(
        result.stream, result.layout, result.signal_length_octets
    )
    return band_power_db(frame.waveform[_DATA_START:], ch.center_offset_hz, 2e6)


@lru_cache(maxsize=8)
def reported_offset_db(seed: int = 13) -> float:
    """Offset mapping unit-power band dB to the paper's reported RSSI.

    Chosen so a normal QAM-64 frame reads the calibration anchor
    (-60 dB on CH1-CH3 at 1 m with TX gain 15).
    """
    reference = np.mean(
        [normal_band_db("qam64-2/3", f"CH{i}", seed=seed) for i in (1, 2, 3)]
    )
    return float(DEFAULT_CALIBRATION.wifi_inband_ch13_at_1m_db - reference)
