"""Fig. 4 motivation scenario: both coexistence failure modes, lifted at once.

The paper's motivating figure shows two simultaneous problems: a ZigBee
link inside the WiFi carrier-sense range is *silenced* (Fig. 4a) while a
link inside the interference range is *corrupted* (Fig. 4b).  This
experiment builds exactly that topology with two links and measures each
link's throughput under normal WiFi and under SledZig — the network-level
view the single-link sweeps of Fig. 14 cannot show, including the ZigBee
links' own mutual CSMA once WiFi stops suppressing them.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.multilink import LinkPlacement, run_multilink

#: The two links of Fig. 4: one close to the AP, one at mid range.
PLACEMENTS = (
    LinkPlacement(tx=(2.0, 0.0), rx=(3.0, 0.0)),   # Z_T1 -> Z_R1 (silenced)
    LinkPlacement(tx=(5.0, 2.0), rx=(6.0, 2.0)),   # Z_T2 -> Z_R2 (interfered)
)

MODES = (
    ("normal", None, "qam64-2/3"),
    ("sledzig qam64", 4, "qam64-2/3"),
    ("sledzig qam256", 4, "qam256-3/4"),
)


def run(duration_us: float = 400_000.0, seed: int = 3) -> ExperimentResult:
    """Per-link and network throughput for each WiFi mode."""
    result = ExperimentResult(
        experiment_id="Fig. 4 scenario",
        title="Two-link network: carrier-sensed link + interfered link (kbps)",
        columns=["mode", "near link (Fig. 4a)", "mid link (Fig. 4b)", "network total"],
    )
    for label, channel, mcs_name in MODES:
        config = CoexistenceConfig(
            wifi=WifiConfig(mcs_name=mcs_name, sledzig_channel=channel),
            zigbee=ZigbeeConfig(channel_index=4),
            topology=Topology(d_wz=4.0, d_z=1.0),
            duration_us=duration_us,
            seed=seed,
        )
        outcome = run_multilink(config, PLACEMENTS)
        result.add_row(
            label,
            outcome.throughput_kbps(0),
            outcome.throughput_kbps(1),
            outcome.total_zigbee_kbps,
        )
    result.notes.append(
        "normal WiFi silences the near link entirely (the Fig. 4a carrier-"
        "sense failure) and degrades the mid link; SledZig releases both"
    )
    return result
