"""Table II: significant-bit positions of the first OFDM symbol (QAM-16, CH2).

The paper's printed positions correspond to a sign/magnitude constellation
labelling with the interleaver permutation applied in the reverse direction;
this library uses the 802.11 standard labelling, which scatters the same 14
significant bits to different (equally valid) positions.  Both variants are
reported: the *paper-convention* computation reproduces Table II digit for
digit, the *standard-convention* one is what the shipping encoder uses.
"""

from __future__ import annotations

from typing import List

from repro.experiments.base import ExperimentResult
from repro.sledzig.significant import significant_positions_paper
from repro.wifi.interleaver import interleave_permutation
from repro.wifi.params import data_subcarrier_index, get_mcs
from repro.sledzig.channels import get_channel

#: The paper's Table II p_k values (1-based), QAM-16 / CH2 / first symbol.
PAPER_POSITIONS = [29, 30, 41, 42, 77, 78, 89, 90, 125, 138, 172, 173, 183, 186]


def paper_convention_positions(mcs_name: str = "qam16-1/2", channel: str = "CH2") -> List[int]:
    """Positions under the paper's convention (reverse permutation +
    magnitude-bit offsets), 1-based and sorted."""
    mcs = get_mcs(mcs_name)
    ch = get_channel(channel)
    half = mcs.n_bpsc // 2
    # Sign/magnitude labelling: the magnitude bits are the last (n_bpsc/2)
    # offsets of the point, i.e. offsets half..n_bpsc-1.
    offsets = list(range(half, mcs.n_bpsc))
    fwd = interleave_permutation(mcs.n_cbps, mcs.n_bpsc)
    positions = []
    for logical in ch.data_subcarriers:
        d = data_subcarrier_index(logical)
        for offset in offsets:
            positions.append(fwd[d * mcs.n_bpsc + offset] + 1)
    return sorted(positions)


def run() -> ExperimentResult:
    """Compare paper-convention and standard-convention positions."""
    paper_calc = paper_convention_positions()
    standard = significant_positions_paper("qam16-1/2", "CH2")
    result = ExperimentResult(
        experiment_id="Table II",
        title="Significant-bit positions p_k, first OFDM symbol (QAM-16, CH2)",
        columns=["k", "paper", "paper-convention calc", "standard-convention"],
    )
    for k in range(len(PAPER_POSITIONS)):
        result.add_row(
            k + 1,
            PAPER_POSITIONS[k],
            paper_calc[k] if k < len(paper_calc) else "-",
            standard[k] if k < len(standard) else "-",
        )
    if paper_calc == PAPER_POSITIONS:
        result.notes.append(
            "paper-convention calculation reproduces Table II exactly"
        )
    result.notes.append(
        "the shipping encoder uses the 802.11 standard bit labelling; the 14 "
        "significant bits land at different but functionally equivalent "
        "positions (verified by waveform power measurements)"
    )
    return result
