"""Ablation studies for SledZig's design choices.

Each ablation isolates one decision the paper (or this reproduction) makes
and quantifies what it buys:

* **span**: how many subcarriers to silence per ZigBee channel (Section
  IV-B says 8 = 6 fully-overlapped + 2 guards; fewer leaks, more wastes
  payload);
* **solver**: the paper's Algorithm 1 versus this library's cluster solver
  (identical overhead; the cluster solver additionally covers the
  configurations where Algorithm 1's twin precondition fails);
* **preamble**: the coexistence simulator's full-power preamble window
  (turning it off overstates SledZig at short range — the Fig. 15 effect);
* **cca threshold**: ZigBee clear-channel sensitivity (too sensitive and
  ZigBee defers forever; too deaf and it collides).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import InsertionError
from repro.experiments.base import ExperimentResult
from repro.experiments.fig11_subcarriers import channel_with_n_data
from repro.experiments.rssi_common import reported_offset_db, sledzig_band_db
from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.simulator import run_coexistence
from repro.sledzig.algorithm1 import generate_transmit_bits
from repro.sledzig.insertion import plan_insertion, verify_stream
from repro.sledzig.significant import extra_bits_per_symbol
from repro.utils.bits import random_bits
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs


def span_ablation(
    mcs_name: str = "qam64-2/3",
    channel_index: int = 2,
    n_data_values: Sequence[int] = (5, 6, 7, 8, 9),
    seed: int = 23,
) -> ExperimentResult:
    """RSSI gained vs payload overhead as the silenced span grows."""
    offset = reported_offset_db(seed=seed)
    mcs = get_mcs(mcs_name)
    result = ExperimentResult(
        experiment_id="Ablation: span",
        title=f"Silenced-subcarrier count on CH{channel_index}, {mcs_name}",
        columns=["n_data", "RSSI dB", "extra bits/symbol", "loss %"],
    )
    per_point = {"qam16": 2, "qam64": 4, "qam256": 6}[mcs.modulation]
    for n_data in n_data_values:
        variant = channel_with_n_data(channel_index, n_data)
        readings = [
            sledzig_band_db(mcs_name, variant, 120, seed + k) for k in range(3)
        ]
        extra = n_data * per_point
        result.add_row(
            n_data,
            float(np.mean(readings)) + offset,
            extra,
            100.0 * extra / mcs.n_dbps,
        )
    result.notes.append(
        "RSSI saturates at 7 data subcarriers (plus the pilot = the paper's "
        "8-span) while overhead keeps growing linearly — the Section IV-B "
        "operating point"
    )
    return result


def solver_ablation(seed: int = 29) -> ExperimentResult:
    """Algorithm 1 (as printed) vs the cluster solver, per configuration.

    Reports, for every paper MCS x channel: whether each approach produces
    a valid stream and the per-symbol extra-bit count (identical when both
    succeed).
    """
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment_id="Ablation: solver",
        title="Paper Algorithm 1 vs generalised cluster solver",
        columns=["mcs", "channel", "algorithm1", "cluster", "extra/symbol"],
    )
    for name in PAPER_MCS_NAMES:
        mcs = get_mcs(name)
        for channel in ("CH1", "CH2", "CH3", "CH4"):
            k = extra_bits_per_symbol(mcs, channel)
            # Cluster solver (always applicable).
            plan = plan_insertion(mcs, channel, 2)
            payload = random_bits(plan.payload_capacity, rng)
            from repro.sledzig.insertion import build_stream

            cluster_ok = not verify_stream(build_stream(plan, payload), mcs, channel)
            # Algorithm 1: rate-1/2 only, and only when twins stay isolated.
            if mcs.coding_rate == "1/2":
                try:
                    stream, _ = generate_transmit_bits(
                        random_bits(2 * mcs.n_dbps, rng), mcs, channel
                    )
                    whole = stream[: (stream.size // mcs.n_dbps) * mcs.n_dbps]
                    alg1 = "ok" if not verify_stream(whole, mcs, channel) else "invalid"
                except InsertionError:
                    alg1 = "precondition fails"
            else:
                alg1 = "n/a (punctured)"
            result.add_row(name, channel, alg1, "ok" if cluster_ok else "invalid", k)
    result.notes.append(
        "both insert exactly one extra bit per significant bit; the cluster "
        "solver additionally covers punctured rates and adjacent-constraint "
        "cases outside Algorithm 1's stated preconditions"
    )
    return result


def preamble_ablation(
    d_z_values: Sequence[float] = (1.0, 1.4, 1.6),
    duration_us: float = 300_000.0,
    seed: int = 5,
) -> ExperimentResult:
    """Effect of modelling the WiFi preamble window at full power.

    With the preamble modelled (default), SledZig collapses at d_Z ~1.6 m
    (Fig. 15); pretending the whole burst is payload-level flattens that
    cliff — evidence the simulator's preamble term carries the paper's
    Section IV-F limitation.
    """
    result = ExperimentResult(
        experiment_id="Ablation: preamble",
        title="ZigBee throughput (kbps) with/without the full-power preamble "
        "window (CH4, d_WZ = 6 m, QAM-256 SledZig, bursty WiFi)",
        columns=["d_z (m)", "with preamble", "without preamble"],
    )
    for d_z in d_z_values:
        row = [d_z]
        for preamble in (True, False):
            config = CoexistenceConfig(
                wifi=WifiConfig(
                    mcs_name="qam256-3/4",
                    sledzig_channel=4,
                    duty_ratio=0.8,
                    burst_duration_us=3000.0,
                    preamble_modelled=preamble,
                ),
                zigbee=ZigbeeConfig(channel_index=4),
                topology=Topology(d_wz=6.0, d_z=d_z),
                duration_us=duration_us,
                seed=seed,
            )
            row.append(run_coexistence(config).zigbee_throughput_kbps)
        result.add_row(*row)
    result.notes.append(
        "the preamble window is what keeps SledZig honest at the margin: "
        "removing it inflates throughput at weak-signal distances"
    )
    return result


def cca_threshold_ablation(
    thresholds_db: Sequence[float] = (-85.0, -77.0, -70.0, -60.0),
    duration_us: float = 300_000.0,
    seed: int = 5,
) -> ExperimentResult:
    """ZigBee CCA sensitivity under a duty-cycled normal WiFi neighbour."""
    result = ExperimentResult(
        experiment_id="Ablation: CCA threshold",
        title="ZigBee throughput (kbps) vs CCA threshold (normal WiFi, 50% "
        "duty, d_WZ = 1.5 m)",
        columns=["threshold dB", "throughput", "cca busy %", "failed %"],
    )
    for threshold in thresholds_db:
        config = CoexistenceConfig(
            wifi=WifiConfig(duty_ratio=0.5, burst_duration_us=4000.0),
            zigbee=ZigbeeConfig(channel_index=4, cca_threshold_db=threshold),
            topology=Topology(d_wz=1.5, d_z=0.5),
            duration_us=duration_us,
            seed=seed,
        )
        res = run_coexistence(config)
        stats = res.zigbee
        busy = stats.cca_busy / max(stats.cca_attempts, 1)
        failed = stats.packets_failed / max(stats.packets_sent, 1)
        result.add_row(
            threshold,
            res.zigbee_throughput_kbps,
            100.0 * busy,
            100.0 * failed,
        )
    result.notes.append(
        "very sensitive thresholds defer into starvation; deaf thresholds "
        "transmit into collisions — the -70 dB operating point balances both"
    )
    return result
