"""Table III: extra bits per OFDM symbol across modulation/rate/channel."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.sledzig.analysis import extra_bits_table

#: The paper's printed values, keyed by MCS name (see note on QAM-64 2/3).
PAPER_TABLE3 = {
    "qam16-1/2": (96, 14, 10),
    "qam16-3/4": (144, 14, 10),   # printed as "2/3" in the paper
    "qam64-2/3": (192, 24, 20),   # 24 is inconsistent with Table IV's 14.58%
    "qam64-3/4": (216, 28, 20),
    "qam64-5/6": (240, 28, 20),
    "qam256-3/4": (288, 42, 30),
    "qam256-5/6": (320, 42, 30),
}


def run() -> ExperimentResult:
    """Recompute the extra-bit counts and compare with the printed table."""
    result = ExperimentResult(
        experiment_id="Table III",
        title="Extra bits per OFDM symbol",
        columns=[
            "mcs",
            "bits/symbol",
            "extra CH1-3",
            "paper",
            "extra CH4",
            "paper",
        ],
    )
    for row in extra_bits_table():
        paper = PAPER_TABLE3.get(row.mcs_name, ("-", "-", "-"))
        result.add_row(
            row.mcs_name,
            row.n_dbps,
            row.extra_ch13,
            paper[1],
            row.extra_ch4,
            paper[2],
        )
    result.notes.append(
        "paper's QAM-16 second row is labelled 2/3 but has 144 bits/symbol "
        "= the standard rate-3/4 mode"
    )
    result.notes.append(
        "paper prints 24 extra bits for QAM-64 2/3 CH1-CH3, inconsistent "
        "with its own Table IV (14.58% x 192 = 28); we compute 28 = "
        "7 data subcarriers x 4 significant bits, rate-independent"
    )
    return result
