"""Fig. 17: RSSI collected at the WiFi receiver from WiFi vs ZigBee signals.

Propagation-model reproduction of the asymmetry that protects WiFi: the
ZigBee signal reaches the WiFi receiver ~30 dB below the WiFi signal (its
2 MHz power is additionally diluted across the 20 MHz receive band) and
sinks to the noise floor by about 1 m — hence the paper's observation that
ZigBee transmissions never raised the WiFi BER (Section V-D2).
"""

from __future__ import annotations

from repro.channel.propagation import wifi_at_wifi_rx, zigbee_at_wifi_rx
from repro.experiments.base import ExperimentResult
from repro.wifi.params import PAPER_MCS_NAMES, get_mcs


def run() -> ExperimentResult:
    """Tabulate both curves and the resulting WiFi SINR headroom."""
    result = ExperimentResult(
        experiment_id="Fig. 17",
        title="RSSI at the WiFi receiver vs distance",
        columns=["distance (m)", "WiFi dB", "ZigBee dB", "gap dB"],
    )
    for d in (0.5, 1.0, 2.0, 3.0, 4.0, 5.0):
        wifi = wifi_at_wifi_rx(d, floor=True)
        zigbee = zigbee_at_wifi_rx(d, floor=True)
        result.add_row(d, wifi, zigbee, wifi - zigbee)
    worst = max(get_mcs(name).min_snr_db for name in PAPER_MCS_NAMES)
    result.notes.append(
        "paper anchor: ZigBee at 0.5 m reads ~-85 dB, ~30 dB under WiFi, "
        "and reaches the noise floor near 1 m"
    )
    result.notes.append(
        "the ZigBee level pins to the noise floor beyond ~1 m, so WiFi SNR "
        "is noise-limited, not ZigBee-limited; only the strictest mode "
        f"(QAM-256 5/6, {worst:.0f} dB) would need to adapt at very close "
        "range — the paper's own fallback (Section V-D2)"
    )
    return result
