"""Section III-B theory and Table I: constellation-level power analysis."""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.sledzig.analysis import theoretical_power_decrease_db
from repro.wifi.constellation import significant_bit_pattern
from repro.wifi.params import average_constellation_power

#: The paper's stated values (Section III-B) for comparison.
PAPER_DECREASE_DB = {"qam16": 7.0, "qam64": 13.2, "qam256": 19.3}


def run() -> ExperimentResult:
    """Recompute P_avg / P_low for each QAM and the significant-bit counts."""
    result = ExperimentResult(
        experiment_id="Sec III-B / Table I",
        title="Constellation power decrease and significant bits per QAM point",
        columns=[
            "modulation",
            "P_avg",
            "P_low",
            "decrease_dB",
            "paper_dB",
            "significant_bits",
        ],
    )
    for modulation in ("qam16", "qam64", "qam256"):
        pattern = significant_bit_pattern(modulation)
        result.add_row(
            modulation,
            average_constellation_power(modulation),
            2.0,
            theoretical_power_decrease_db(modulation),
            PAPER_DECREASE_DB[modulation],
            len(pattern),
        )
    result.notes.append(
        "significant bits per point: 2/4/6 for QAM-16/64/256 (paper Table I)"
    )
    return result
