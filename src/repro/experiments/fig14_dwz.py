"""Fig. 14: ZigBee throughput vs d_WZ under continuous WiFi transmission.

Runs the coexistence simulator across the paper's distance sweep for
normal WiFi and SledZig under the three QAM modulations, on (a) a CH1-CH3
channel and (b) CH4.  Paper crossovers: normal ~8.5 m; SledZig ~5 / 4.5 /
3.5 m (QAM-16/64/256) on CH1-CH3; on CH4 QAM-256 succeeds from ~1 m.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.simulator import run_coexistence
from repro.montecarlo import seeding

#: Curves: label -> (mcs, sledzig?).
CURVES: "Tuple[Tuple[str, Tuple[str, bool]], ...]" = (
    ("normal", ("qam64-2/3", False)),
    ("qam16", ("qam16-1/2", True)),
    ("qam64", ("qam64-2/3", True)),
    ("qam256", ("qam256-3/4", True)),
)

DEFAULT_DISTANCES: Tuple[float, ...] = (1, 2, 3, 3.5, 4, 4.5, 5, 6, 7, 8.5, 10)


def throughput_at(
    d_wz: float,
    channel_index: int,
    mcs_name: str,
    sledzig: bool,
    duration_us: float = 400_000.0,
    seed: int = 2,
) -> float:
    """ZigBee throughput (kbps) for one point of the sweep.

    The simulation stream is addressed by the sweep point (channel, curve,
    distance), so any subset of the grid reproduces the full run's values.
    """
    config = CoexistenceConfig(
        wifi=WifiConfig(
            mcs_name=mcs_name,
            sledzig_channel=channel_index if sledzig else None,
        ),
        zigbee=ZigbeeConfig(channel_index=channel_index),
        topology=Topology(d_wz=d_wz, d_z=1.0),
        duration_us=duration_us,
        seed=seed,
    )
    rng = seeding.trial_rng(
        seed, f"fig14/ch{channel_index}/{mcs_name}/sledzig={sledzig}/d={d_wz}", 0
    )
    return run_coexistence(config, rng=rng).zigbee_throughput_kbps


def sweep_channel(
    channel_index: int,
    distances: Sequence[float] = DEFAULT_DISTANCES,
    duration_us: float = 400_000.0,
    seed: int = 2,
) -> Dict[str, List[float]]:
    """All four curves over the distance grid."""
    curves: Dict[str, List[float]] = {}
    for label, (mcs_name, sledzig) in CURVES:
        curves[label] = [
            throughput_at(d, channel_index, mcs_name, sledzig, duration_us, seed)
            for d in distances
        ]
    return curves


def run(
    channel_index: int = 3,
    distances: Sequence[float] = DEFAULT_DISTANCES,
    duration_us: float = 400_000.0,
    master_seed: int = 2,
) -> ExperimentResult:
    """One Fig. 14 panel as a table (channel 3 -> panel (a), 4 -> (b))."""
    panel = "a" if channel_index != 4 else "b"
    curves = sweep_channel(channel_index, distances, duration_us, master_seed)
    result = ExperimentResult(
        experiment_id=f"Fig. 14{panel}",
        title=(
            f"ZigBee throughput (kbps) vs d_WZ, CH{channel_index}, "
            "continuous WiFi, d_Z = 1 m"
        ),
        columns=["d_wz (m)"] + [label for label, _ in CURVES],
    )
    for i, d in enumerate(distances):
        result.add_row(d, *(curves[label][i] for label, _ in CURVES))
    if channel_index != 4:
        result.notes.append(
            "paper crossovers: normal ~8.5 m, QAM-16 ~5 m, QAM-64 ~4.5 m, "
            "QAM-256 ~3.5 m"
        )
    else:
        result.notes.append(
            "paper: on CH4, QAM-256 sustains ZigBee from d_WZ as short as 1 m"
        )
    return result
