"""Fig. 11: impact of the number of silenced data subcarriers on RSSI.

Sweeps how many data subcarriers (nearest the ZigBee channel centre) are
filled with lowest-power points, generates real waveforms, and measures the
2 MHz in-band power.  Reproduces the paper's finding: because subcarriers
leak into their neighbours, seven data subcarriers beat six on CH1-CH3 and
adding an eighth changes nothing; five are the optimum for CH4.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.experiments.rssi_common import reported_offset_db, sledzig_band_db
from repro.sledzig.channels import channel_with_n_data

__all__ = ["channel_with_n_data", "run"]


def run(
    mcs_name: str = "qam64-2/3",
    payload_octets: int = 150,
    seed: int = 13,
    n_seeds: int = 3,
) -> ExperimentResult:
    """Measure in-band RSSI for each channel across subcarrier counts.

    Readings are averaged over *n_seeds* payloads: like the paper's testbed
    readings, a single frame's in-band power varies 1-3 dB with content.
    """
    offset = reported_offset_db(seed=seed)
    result = ExperimentResult(
        experiment_id="Fig. 11",
        title=f"RSSI at ZigBee (1 m) vs number of silenced data subcarriers, {mcs_name}",
        columns=["channel", "n_data", "RSSI dB"],
    )
    counts: Dict[int, List[int]] = {1: [6, 7, 8], 2: [6, 7, 8], 3: [6, 7, 8], 4: [4, 5, 6]}
    for index in (1, 2, 3, 4):
        for n_data in counts[index]:
            variant = channel_with_n_data(index, n_data)
            readings = [
                sledzig_band_db(mcs_name, variant, payload_octets, seed + k)
                for k in range(n_seeds)
            ]
            rssi = float(np.mean(readings)) + offset
            result.add_row(f"CH{index}", n_data, rssi)
    result.notes.append(
        "CH1-CH3: 7 data subcarriers are 1-2 dB better than 6, and 8 adds "
        "nothing (paper Fig. 11); CH4 saturates at 5"
    )
    return result
