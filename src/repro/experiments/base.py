"""Common experiment infrastructure: structured results and text rendering.

Every experiment module exposes a ``run(...) -> ExperimentResult`` function;
the runner executes them all and renders the same rows/series the paper
reports, so paper-vs-measured comparisons live in one place
(EXPERIMENTS.md records the outcomes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence


@dataclass
class ExperimentResult:
    """A table of results for one paper table or figure.

    Attributes:
        experiment_id: paper reference, e.g. "Table IV" or "Fig. 14a".
        title: one-line description.
        columns: column headers.
        rows: row tuples (values are str/float/int).
        notes: caveats and paper-vs-measured commentary.
        manifest_extra: extra top-level keys the runner merges into this
            experiment's ``--metrics-out`` manifest record (the gateway
            experiment reports its SLO object this way); keys must not
            collide with the record's own.
    """

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    manifest_extra: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(values)

    def format_table(self) -> str:
        """Render as an aligned text table."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.2f}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in cells))
            if cells
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"{self.experiment_id}: {self.title}"]
        lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(self.columns, widths)))
        lines.append("  " + "  ".join("-" * w for w in widths))
        for row in cells:
            lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
