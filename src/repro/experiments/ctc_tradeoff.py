"""CTC side-channel trade-off: symbol rate x modulation depth.

Sweeps the power-pattern alphabet's two knobs against the two quantities
they trade:

* **CTC BER / frame delivery** — Monte-Carlo trials in the RSSI domain:
  each trial frames a random payload, synthesises the receiver's RSSI
  stream at the measured-anchored symbol levels with Gaussian reported-dB
  noise (the acceptance SNR), and runs the full
  :class:`~repro.sledzig.ctc.demod.CtcDemodulator` — sync, framing and
  CRC, with every error mode counted under ``ctc.rx.*``;
* **ZigBee delivery ratio** — the multi-cell grid scenario run once with
  plain SledZig and once per depth with the CTC beacon modulated onto
  every cell's protected sub.  Both runs share one scenario name, so
  every RNG stream is identical and the delivery delta isolates the
  power-pattern modulation itself.

The headline acceptance numbers ride into the ``--metrics-out`` manifest
as a ``ctc`` object (validated by :mod:`repro.tools.check_manifest`):
at the lowest depth the ZigBee delivery ratio must sit within 2% of
plain SledZig while the side channel still decodes (BER < 1e-2 at the
highest symbol-averaging rate).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.channel.propagation import wifi_profile
from repro.experiments.base import ExperimentResult
from repro.mac.scenario import grid_scenario, run_scenario
from repro.montecarlo.seeding import trial_rng
from repro.sledzig.ctc.alphabet import ctc_alphabet, scaled_decreases_db
from repro.sledzig.ctc.demod import demodulate, slice_bits
from repro.sledzig.ctc.framing import frame_bits
from repro.sledzig.ctc.modem import CtcModulator, synthesize_rssi

#: Modulation depths swept (data subcarriers released per 0-symbol).
DEFAULT_DEPTHS: Tuple[int, ...] = (1, 2, 4)

#: WiFi frames per CTC symbol (RSSI samples averaged per symbol).
DEFAULT_RATES: Tuple[int, ...] = (1, 2, 4)

#: Reported-dB RSSI noise of the acceptance operating point (CC2420
#: register jitter at usable link SNR).
ACCEPTANCE_NOISE_DB: float = 0.4

#: Side-channel payload octets per Monte-Carlo trial.
TRIAL_PAYLOAD_OCTETS: int = 8

#: The pinned scenario name both delivery runs share (identical RNG
#: streams -> the delta isolates the power-pattern modulation).
DELIVERY_SCENARIO_NAME: str = "ctc/delivery-compare"


def _symbol_levels_db(
    mcs_name: str, channel: int, depth: int
) -> Tuple[float, float]:
    """Receiver RSSI level per symbol bit at 1 m (measured-anchored)."""
    alphabet = ctc_alphabet(mcs_name, channel, depth)
    low_decrease, full_decrease = scaled_decreases_db(alphabet)
    normal = wifi_profile(channel=channel).payload_db_at_1m
    return (normal - low_decrease, normal - full_decrease)


def _ber_point(
    mcs_name: str,
    channel: int,
    depth: int,
    frames_per_symbol: int,
    n_trials: int,
    noise_db: float,
    master_seed: int,
) -> Dict[str, float]:
    """One Monte-Carlo BER/delivery point of the sweep."""
    modulator = CtcModulator(mcs_name, channel, depth, frames_per_symbol)
    levels = _symbol_levels_db(mcs_name, channel, depth)
    bit_errors = 0
    bits_total = 0
    frames_delivered = 0
    for trial in range(n_trials):
        rng = trial_rng(
            master_seed, f"ctc/d{depth}/r{frames_per_symbol}", trial
        )
        payload = rng.integers(
            0, 256, size=TRIAL_PAYLOAD_OCTETS, dtype=np.uint8
        ).tobytes()
        schedule = modulator.pattern_schedule(payload)
        lead_in = int(rng.integers(0, 24))
        stream = synthesize_rssi(
            schedule, 1, levels,
            lead_in=lead_in, tail=int(rng.integers(0, 24)),
            noise_db=noise_db, rng=rng,
        )
        reference = frame_bits(payload)
        sliced = slice_bits(
            stream[lead_in : lead_in + len(schedule)], frames_per_symbol
        )
        bit_errors += int(np.count_nonzero(sliced != reference))
        bits_total += reference.size
        frames, _ = demodulate(
            stream, samples_per_symbol=frames_per_symbol, min_swing_db=0.5
        )
        if any(f.payload == payload for f in frames):
            frames_delivered += 1
    return {
        "ber": bit_errors / bits_total,
        "frames_delivered": frames_delivered,
        "frames_sent": n_trials,
    }


def _grid_delivery(
    n_bss: int,
    n_sensors: int,
    duration_us: float,
    master_seed: int,
    ctc_depth: Optional[int],
) -> float:
    """Network delivery ratio of one grid run (1.0 when nothing attempted)."""
    config = grid_scenario(
        n_bss, n_sensors,
        name=DELIVERY_SCENARIO_NAME,
        duration_us=duration_us,
        master_seed=master_seed,
        sledzig=True,
        ctc_depth=ctc_depth,
        duty_ratio=0.9,
    )
    result = run_scenario(config)
    attempted = sum(s.packets_attempted for s in result.sensors.values())
    delivered = sum(s.packets_delivered for s in result.sensors.values())
    return delivered / attempted if attempted else 1.0


def run(
    depths: Sequence[int] = DEFAULT_DEPTHS,
    rates: Sequence[int] = DEFAULT_RATES,
    n_trials: int = 24,
    noise_db: float = ACCEPTANCE_NOISE_DB,
    mcs_name: str = "qam64-2/3",
    channel: int = 2,
    n_bss: int = 3,
    n_sensors: int = 24,
    duration_us: float = 200_000.0,
    master_seed: int = 2026,
) -> ExperimentResult:
    """Sweep depth x symbol rate against CTC BER and ZigBee delivery.

    Args:
        depths: modulation depths (released subcarriers per 0-symbol).
        rates: WiFi frames averaged per CTC symbol.
        n_trials: Monte-Carlo side-channel frames per sweep point.
        noise_db: reported-dB RSSI noise (the acceptance SNR).
        mcs_name / channel: WiFi MCS and protected overlap sub-channel.
        n_bss / n_sensors / duration_us: grid-scenario population for the
            delivery comparison.
        master_seed: addresses every trial and scenario RNG stream.
    """
    result = ExperimentResult(
        experiment_id="CTC",
        title="CTC side channel: symbol rate x depth vs BER and delivery",
        columns=[
            "depth", "frames/sym", "sep_db", "trials", "raw_ber",
            "frames_ok", "sync_err", "hdr_err", "crc_err",
            "zb_sledzig", "zb_ctc",
        ],
    )
    delivery_sledzig = _grid_delivery(
        n_bss, n_sensors, duration_us, master_seed, None
    )
    delivery_by_depth: Dict[int, float] = {}
    acceptance: Dict[str, object] = {}
    error_totals = {"sync_errors": 0, "header_errors": 0, "crc_errors": 0}

    for depth in depths:
        alphabet = ctc_alphabet(mcs_name, channel, depth)
        delivery_by_depth[depth] = _grid_delivery(
            n_bss, n_sensors, duration_us, master_seed, depth
        )
        for rate in rates:
            with telemetry.collect() as tel:
                point = _ber_point(
                    mcs_name, channel, depth, rate,
                    n_trials, noise_db, master_seed,
                )
            snapshot = tel.snapshot()
            telemetry.current().merge(snapshot)
            counters = snapshot.counters
            sync_err = int(counters.get("ctc.rx.sync_errors", 0))
            hdr_err = int(counters.get("ctc.rx.header_errors", 0))
            crc_err = int(counters.get("ctc.rx.crc_errors", 0))
            error_totals["sync_errors"] += sync_err
            error_totals["header_errors"] += hdr_err
            error_totals["crc_errors"] += crc_err
            result.add_row(
                depth, rate, round(alphabet.separation_db, 2), n_trials,
                round(point["ber"], 5),
                f"{point['frames_delivered']}/{point['frames_sent']}",
                sync_err, hdr_err, crc_err,
                round(delivery_sledzig, 4),
                round(delivery_by_depth[depth], 4),
            )
            if depth == min(depths) and rate == max(rates):
                acceptance = {
                    "depth": depth,
                    "frames_per_symbol": rate,
                    "noise_db": noise_db,
                    "separation_db": alphabet.separation_db,
                    "ber": point["ber"],
                    "frames_sent": point["frames_sent"],
                    "frames_delivered": point["frames_delivered"],
                }

    lowest = min(depths)
    delivery = {
        "sledzig": delivery_sledzig,
        "ctc": delivery_by_depth[lowest],
        "delta": abs(delivery_sledzig - delivery_by_depth[lowest]),
    }
    result.manifest_extra["ctc"] = {
        **acceptance,
        **error_totals,
        "delivery": delivery,
    }
    result.notes.append(
        "Delivery runs share one scenario name, so their RNG streams are "
        "identical and zb_ctc - zb_sledzig isolates the pattern modulation."
    )
    result.notes.append(
        "Acceptance (manifest 'ctc' object): lowest depth, highest "
        "frames/sym — delivery delta <= 2% with side-channel BER < 1e-2."
    )
    return result
