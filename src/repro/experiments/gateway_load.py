"""Gateway load experiment: sustained encode throughput with SLOs.

Drives a fleet of in-process clients through the
:class:`~repro.gateway.server.GatewayServer`, sweeping fleet size and
batch policy, and reports serving metrics per configuration: throughput
(frame requests per second), p50/p99 encode latency, mean batch fill and
a bit-identity check of every served waveform against a direct
``encode_frames`` call on the same payloads — the OfdmFi-style
"counters, not eyeballs" fidelity pin.  The final configuration's full
SLO snapshot rides into the ``--metrics-out`` manifest as an ``slo``
object (validated by :mod:`repro.tools.check_manifest`).
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.gateway import BatchPolicy, EncodeProfile, GatewayClient, GatewayServer
from repro.montecarlo.seeding import trial_rng
from repro.sledzig.pipeline import encode_frames

#: (clients, frames per client, max batch) load points.
DEFAULT_SWEEP: Tuple[Tuple[int, int, int], ...] = (
    (4, 16, 8),
    (8, 16, 16),
    (16, 16, 32),
)

#: Gateway encode profile under test.
DEFAULT_PROFILE = EncodeProfile(
    technology="sledzig", mcs="qam16-1/2", channel="CH1"
)

#: Octets per frame request (small frames keep the load smoke fast).
PAYLOAD_OCTETS = 8


def _client_payloads(
    master_seed: int, n_clients: int, frames_per_client: int
) -> List[List[bytes]]:
    """Deterministic per-client payloads from the seeded trial streams."""
    payloads: List[List[bytes]] = []
    for client in range(n_clients):
        rng = trial_rng(master_seed, "gateway_load", client)
        payloads.append([
            rng.integers(0, 256, size=PAYLOAD_OCTETS, dtype=np.uint8).tobytes()
            for _ in range(frames_per_client)
        ])
    return payloads


async def _drive(
    payloads: List[List[bytes]],
    policy: BatchPolicy,
    workers: int,
    profile: EncodeProfile,
) -> Tuple[List[List[np.ndarray]], float, Dict[str, object]]:
    """Run one load point; returns per-client waveforms, seconds, SLOs."""
    async with GatewayServer(profile, policy, workers=workers) as gateway:
        clients = [GatewayClient(gateway) for _ in payloads]

        async def one_client(
            client: GatewayClient, frames: Sequence[bytes]
        ) -> List[np.ndarray]:
            waveforms: List[np.ndarray] = []
            for frame in frames:
                waveforms.append(await client.encode(frame, timeout_s=30.0))
            return waveforms

        loop = asyncio.get_running_loop()
        start = loop.time()
        served = await asyncio.gather(*(
            one_client(client, frames)
            for client, frames in zip(clients, payloads)
        ))
        seconds = loop.time() - start
        slo = gateway.slo_snapshot()
    return list(served), seconds, slo


def run(
    sweep: Sequence[Tuple[int, int, int]] = DEFAULT_SWEEP,
    workers: int = 0,
    master_seed: int = 2022,
    profile: Optional[EncodeProfile] = None,
) -> ExperimentResult:
    """Sweep gateway load points and report throughput/latency SLOs.

    Args:
        sweep: (clients, frames per client, max batch) configurations.
        workers: gateway worker processes (0 = inline, the CI mode).
        master_seed: seeds the per-client payload streams.
        profile: encode profile under test (default SledZig qam16/CH1).
    """
    profile = profile or DEFAULT_PROFILE
    result = ExperimentResult(
        experiment_id="Gateway",
        title="Coexistence-gateway load: throughput and encode-latency SLOs",
        columns=[
            "clients", "frames", "max_batch", "fps",
            "p50_ms", "p99_ms", "mean_fill", "bit_identical",
        ],
    )
    last_slo: Dict[str, object] = {}
    for n_clients, frames_per_client, max_batch in sweep:
        payloads = _client_payloads(master_seed, n_clients, frames_per_client)
        policy = BatchPolicy(max_batch=max_batch, max_linger_s=0.001,
                             max_pending=4 * n_clients * frames_per_client)
        served, seconds, slo = asyncio.run(
            _drive(payloads, policy, workers, profile)
        )
        direct = [
            encode_frames(frames, profile.mcs, profile.channel,
                          profile.scrambler_seed)
            for frames in payloads
        ]
        identical = all(
            np.array_equal(got, want)
            for got_list, want_list in zip(served, direct)
            for got, want in zip(got_list, want_list)
        )
        n_frames = n_clients * frames_per_client
        latency = slo["latency_s"]
        fills = slo["batch_fill"]
        total_batches = sum(fills.values()) or 1
        mean_fill = sum(
            int(size) * count for size, count in fills.items()
        ) / total_batches
        result.add_row(
            n_clients, n_frames, max_batch,
            round(n_frames / seconds, 1) if seconds > 0 else float("inf"),
            round(latency["p50"] * 1e3, 3),
            round(latency["p99"] * 1e3, 3),
            round(mean_fill, 2),
            "yes" if identical else "NO",
        )
        last_slo = slo
    result.notes.append(
        "every served waveform is bit-identical to a direct encode_frames "
        "call on the same payloads (coalescing never changes bits)"
    )
    result.manifest_extra = {"slo": last_slo}
    return result
