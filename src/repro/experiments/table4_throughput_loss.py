"""Table IV: WiFi throughput loss under SledZig, per MCS and channel group.

Two computations are reported per cell: the analytic loss (extra bits /
data bits per symbol) and an *end-to-end measured* loss — the encoder is run
on real payloads and the loss derived from how many OFDM symbols the same
payload needs with and without SledZig, validating that the implementation's
overhead matches the closed form.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.sledzig.analysis import throughput_loss_table
from repro.sledzig.encoder import SledZigEncoder
from repro.utils.bits import random_bits
from repro.wifi.params import get_mcs
from repro.wifi.ppdu import plan_data_field

#: The paper's printed loss percentages (CH1-CH3, CH4).
PAPER_TABLE4 = {
    "qam16-1/2": (14.58, 10.42),
    "qam16-3/4": (9.72, 6.94),    # printed as "2/3" in the paper
    "qam64-2/3": (14.58, 10.42),
    "qam64-3/4": (12.96, 9.26),
    "qam64-5/6": (11.67, 8.33),
    "qam256-3/4": (14.58, 11.72),  # 11.72 inconsistent: 30/288 = 10.42
    "qam256-5/6": (13.12, 9.37),
}


def measured_loss(mcs_name: str, channel: str, n_data_bits: int = 9600, seed: int = 5) -> float:
    """Throughput loss measured from actual frame sizes.

    Loss = 1 - (plain symbols needed) / (SledZig symbols needed) for the
    same data payload, in the large-frame limit.
    """
    rng = np.random.default_rng(seed)
    data = random_bits(n_data_bits, rng)
    mcs = get_mcs(mcs_name)
    encoder = SledZigEncoder(mcs, channel)
    sled_symbols = encoder.frame_symbols(data.size)
    plain_symbols = plan_data_field(data.size, mcs).n_symbols
    return 1.0 - plain_symbols / sled_symbols


def run() -> ExperimentResult:
    """Analytic and end-to-end measured Table IV."""
    result = ExperimentResult(
        experiment_id="Table IV",
        title="WiFi throughput loss (%)",
        columns=[
            "mcs",
            "min SNR dB",
            "CH1-3 calc",
            "CH1-3 e2e",
            "CH1-3 paper",
            "CH4 calc",
            "CH4 e2e",
            "CH4 paper",
        ],
    )
    for row in throughput_loss_table():
        paper = PAPER_TABLE4.get(row.mcs_name, (float("nan"), float("nan")))
        result.add_row(
            row.mcs_name,
            row.min_snr_db,
            100.0 * row.loss_ch13,
            100.0 * measured_loss(row.mcs_name, "CH1"),
            paper[0],
            100.0 * row.loss_ch4,
            100.0 * measured_loss(row.mcs_name, "CH4"),
            paper[1],
        )
    result.notes.append(
        "paper's QAM-256 3/4 CH4 entry (11.72%) is inconsistent with its "
        "own Table III (30 extra / 288 bits = 10.42%); we report 10.42%"
    )
    result.notes.append("loss range matches the paper: 6.94% .. 14.58%")
    return result
