"""Fig. 5(b): WiFi spectrum with lowest points on the overlapped subcarriers.

Generates a real SledZig frame and a normal frame at the same MCS and
reports per-subcarrier average power, showing the notch over the protected
ZigBee channel while total transmit power stays (almost) unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.sledzig.channels import get_channel
from repro.sledzig.pipeline import SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.spectral import subcarrier_powers
from repro.wifi.transmitter import WifiTransmitter


def spectra(
    mcs_name: str = "qam16-1/2",
    channel: str = "CH2",
    payload_octets: int = 200,
    seed: int = 11,
) -> "tuple[np.ndarray, np.ndarray]":
    """Per-FFT-bin average power of (normal, SledZig) DATA symbols."""
    rng = np.random.default_rng(seed)
    normal_frame = WifiTransmitter(mcs_name).transmit(
        random_bits(8 * payload_octets, rng)
    )
    payload = bytes(rng.integers(0, 256, size=payload_octets, dtype=np.uint8))
    sled = SledZigTransmitter(mcs_name, channel).send(payload)
    normal = subcarrier_powers(np.stack(normal_frame.data_spectra))
    sledzig = subcarrier_powers(np.stack(sled.frame.data_spectra))
    return normal, sledzig


def run(mcs_name: str = "qam16-1/2", channel: str = "CH2") -> ExperimentResult:
    """Summarise the notch depth and total-power invariance."""
    ch = get_channel(channel)
    normal, sled = spectra(mcs_name, channel)
    result = ExperimentResult(
        experiment_id="Fig. 5b",
        title=f"Per-subcarrier power, {mcs_name} protecting {ch.name}",
        columns=["region", "normal dB", "sledzig dB", "delta dB"],
    )

    def region_db(power: np.ndarray, logicals: "tuple[int, ...]") -> float:
        bins = [k % 64 for k in logicals]
        return float(10 * np.log10(np.mean(power[bins]) + 1e-12))

    inside = ch.data_subcarriers
    outside = tuple(
        k for k in range(-26, 27)
        if k != 0 and k not in ch.subcarriers and abs(k) <= 26
        and k not in (-21, -7, 7, 21)
    )
    n_in, s_in = region_db(normal, inside), region_db(sled, inside)
    n_out, s_out = region_db(normal, outside), region_db(sled, outside)
    result.add_row("overlapped data subcarriers", n_in, s_in, s_in - n_in)
    result.add_row("other data subcarriers", n_out, s_out, s_out - n_out)
    total_n = float(10 * np.log10(normal.sum()))
    total_s = float(10 * np.log10(sled.sum()))
    result.add_row("total symbol power", total_n, total_s, total_s - total_n)
    result.notes.append(
        "overlapped subcarriers drop to the lowest-point power while the "
        "rest of the spectrum and the total power are unchanged"
    )
    return result
