"""Robustness waterfall: frame delivery vs channel-impairment magnitude.

The paper's USRP/TelosB testbed exposes SledZig to real RF imperfections —
carrier frequency offset, sampling clock drift, multipath, quantization —
that the substitute path-loss + AWGN channel leaves out.  This experiment
sweeps each impairment magnitude (at a fixed SNR) for three receivers:

* plain WiFi (the 802.11 chain with CFO correction + LTS equalisation),
* SledZig (the same chain plus channel detection and extra-bit stripping),
* ZigBee (the O-QPSK/DSSS chain with preamble CFO correction),

and reports the packet reception ratio per point, demonstrating how much
impairment the hardened receivers absorb before the waterfall.

Trials run on :class:`repro.montecarlo.MonteCarloEngine`: every
(system, axis, magnitude) point is its own experiment key, each trial
draws payload, impairment realisation and noise from its addressed stream
(in that order — the impairment pipeline consumes the trial generators
before :func:`repro.channel.batch.awgn_batch` does), and the whole batch
moves through the transmitters, :class:`repro.impairments
.ImpairmentPipeline` and the batched receivers in stacked passes —
bit-identical to the scalar per-trial loop at any batch size or worker
count (pinned by ``tests/experiments/test_robustness.py``).
"""

from __future__ import annotations

from functools import partial
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro.channel.batch import awgn_batch, stack_waveforms
from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult
from repro.impairments import (
    Adc,
    CarrierFrequencyOffset,
    ImpairmentPipeline,
    IQImbalance,
    Multipath,
    PhaseNoise,
    SamplingClockOffset,
)
from repro.montecarlo import MonteCarloEngine
from repro.sledzig.pipeline import SledZigReceiver, SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.params import SAMPLE_RATE_HZ as WIFI_FS
from repro.wifi.receiver import WifiReceiver
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.params import SAMPLE_RATE_HZ as ZIGBEE_FS
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter

#: 2.4 GHz ISM carrier used to convert crystal ppm to a CFO in Hz.
CARRIER_HZ: float = 2.44e9

#: Sample index of the SIGNAL symbol in a clean locally-generated frame.
_DATA_START = 320

#: Default operating SNR of the sweep — comfortably above the clean
#: waterfall of the WiFi modes used here, so delivery losses are
#: attributable to the impairments.
DEFAULT_SNR_DB: float = 15.0

#: Swept magnitudes per impairment axis (0/identity first).
AXES: Dict[str, Tuple[float, ...]] = {
    "cfo_ppm": (0.0, 10.0, 20.0, 40.0, 80.0),
    "multipath_taps": (1.0, 2.0, 4.0, 6.0),
    "phase_noise_mrad": (0.0, 1.0, 3.0, 10.0),
    "sco_ppm": (0.0, 10.0, 40.0, 100.0),
    "adc_bits": (12.0, 8.0, 6.0, 4.0),
    "iq_gain_db": (0.0, 0.5, 1.0, 2.0),
    # The acceptance scenario: CFO of the given ppm on top of a fixed
    # 4-tap Rayleigh tapped-delay line (the paper-testbed-like worst case).
    "combined_cfo_mp": (0.0, 10.0, 20.0, 40.0),
}


def build_pipeline(
    axis: str, magnitude: float, sample_rate_hz: float
) -> ImpairmentPipeline:
    """The impairment chain for one sweep point of *axis*.

    Every axis maps its scalar magnitude onto one kernel (identity at the
    axis's zero point); unknown axes raise :class:`ConfigurationError`.
    """
    if axis == "cfo_ppm":
        offset_hz = magnitude * 1e-6 * CARRIER_HZ
        return ImpairmentPipeline(
            (CarrierFrequencyOffset(offset_hz, sample_rate_hz),)
        )
    if axis == "multipath_taps":
        n_taps = int(magnitude)
        if n_taps <= 1:
            return ImpairmentPipeline((Multipath(taps=(1.0,)),))
        return ImpairmentPipeline(
            (Multipath(n_taps=n_taps, tap_spacing_samples=2),)
        )
    if axis == "phase_noise_mrad":
        return ImpairmentPipeline((PhaseNoise(magnitude * 1e-3),))
    if axis == "sco_ppm":
        return ImpairmentPipeline((SamplingClockOffset(magnitude),))
    if axis == "adc_bits":
        # Constellation peaks sit well above the unit mean power; 4x
        # headroom keeps clipping a tail event at full resolution.
        return ImpairmentPipeline((Adc(n_bits=int(magnitude), full_scale=4.0),))
    if axis == "iq_gain_db":
        return ImpairmentPipeline(
            (IQImbalance(gain_db=magnitude, phase_deg=2.0 * magnitude),)
        )
    if axis == "combined_cfo_mp":
        offset_hz = magnitude * 1e-6 * CARRIER_HZ
        return ImpairmentPipeline(
            (
                CarrierFrequencyOffset(offset_hz, sample_rate_hz),
                Multipath(n_taps=4, tap_spacing_samples=2),
            )
        )
    raise ConfigurationError(f"unknown impairment axis {axis!r}")


def _wifi_batch(
    rngs: List[np.random.Generator],
    indices: Sequence[int],
    axis: str,
    magnitude: float,
    snr_db: float,
    mcs_name: str,
    psdu_octets: int,
) -> List[float]:
    """One batch of plain-WiFi delivery trials under the axis impairment."""
    pipeline = build_pipeline(axis, magnitude, WIFI_FS)
    tx = WifiTransmitter(mcs_name)
    rx = WifiReceiver()
    psdus = [random_bits(8 * psdu_octets, rng) for rng in rngs]
    frames = tx.transmit_frames(psdus)
    stack = stack_waveforms([f.waveform for f in frames])
    impaired = pipeline.apply(stack, rngs)
    noisy = awgn_batch(impaired, snr_db, rngs)
    receptions = rx.receive_frames(
        list(noisy), data_start=_DATA_START, soft=True, on_error="none"
    )
    return [
        float(r is not None and np.array_equal(r.psdu_bits, psdu))
        for r, psdu in zip(receptions, psdus)
    ]


def _sledzig_batch(
    rngs: List[np.random.Generator],
    indices: Sequence[int],
    axis: str,
    magnitude: float,
    snr_db: float,
    mcs_name: str,
    channel_name: str,
    payload_octets: int,
) -> List[float]:
    """One batch of SledZig delivery trials under the axis impairment."""
    pipeline = build_pipeline(axis, magnitude, WIFI_FS)
    tx = SledZigTransmitter(mcs_name, channel_name)
    rx = SledZigReceiver()
    payloads = [
        bytes(rng.integers(0, 256, payload_octets, dtype=np.uint8))
        for rng in rngs
    ]
    packets = tx.send_frames(payloads)
    stack = stack_waveforms([p.waveform for p in packets])
    impaired = pipeline.apply(stack, rngs)
    noisy = awgn_batch(impaired, snr_db, rngs)
    received = rx.receive_frames(list(noisy), on_error="none")
    return [
        float(r is not None and r.payload == payload)
        for r, payload in zip(received, payloads)
    ]


def _zigbee_batch(
    rngs: List[np.random.Generator],
    indices: Sequence[int],
    axis: str,
    magnitude: float,
    snr_db: float,
    psdu_octets: int,
) -> List[float]:
    """One batch of ZigBee delivery trials under the axis impairment."""
    pipeline = build_pipeline(axis, magnitude, ZIGBEE_FS)
    tx = ZigbeeTransmitter()
    rx = ZigbeeReceiver()
    psdus = [
        bytes(rng.integers(0, 256, psdu_octets, dtype=np.uint8))
        for rng in rngs
    ]
    transmissions = [tx.send(psdu) for psdu in psdus]
    stack = stack_waveforms([t.waveform for t in transmissions])
    impaired = pipeline.apply(stack, rngs)
    noisy = awgn_batch(impaired, snr_db, rngs)
    received = rx.receive_frames(
        list(noisy), on_error="none", correct_cfo=True
    )
    return [
        float(r is not None and r.frame.psdu == psdu)
        for r, psdu in zip(received, psdus)
    ]


#: System name -> (batch evaluator, default kwargs).
SYSTEMS: Dict[str, Tuple[Callable[..., List[float]], Dict[str, object]]] = {
    "wifi": (_wifi_batch, {"mcs_name": "qam16-1/2", "psdu_octets": 50}),
    "sledzig": (
        _sledzig_batch,
        {"mcs_name": "qam16-1/2", "channel_name": "CH2", "payload_octets": 30},
    ),
    "zigbee": (_zigbee_batch, {"psdu_octets": 24}),
}


def point_key(
    system: str, axis: str, magnitude: float, snr_db: float
) -> str:
    """The Monte-Carlo experiment key for one sweep point."""
    return f"robustness_waterfall/{system}/{axis}/{magnitude:g}/{snr_db:g}dB"


def delivery_summary(
    system: str,
    axis: str,
    magnitude: float,
    snr_db: float = DEFAULT_SNR_DB,
    n_frames: int = 10,
    seed: int = 7,
    workers: int = 0,
    batch_size: int = 32,
    **overrides: object,
):
    """Full Monte-Carlo result (Wilson CI included) for one sweep point."""
    if system not in SYSTEMS:
        raise ConfigurationError(
            f"unknown system {system!r}; choose from {sorted(SYSTEMS)}"
        )
    batch, kwargs = SYSTEMS[system]
    kwargs = {**kwargs, **overrides}
    engine = MonteCarloEngine(
        point_key(system, axis, magnitude, snr_db),
        master_seed=seed,
        kind="proportion",
    )
    batch_fn = partial(
        batch, axis=axis, magnitude=magnitude, snr_db=snr_db, **kwargs
    )

    def trial_fn(rng: np.random.Generator, index: int) -> float:
        # Scalar reference path: a batch of one (the conformance tests
        # pin its bit-identity with the batched path).
        return batch_fn([rng], [index])[0]

    return engine.run(
        trial_fn,
        n_frames,
        batch_fn=batch_fn,
        batch_size=batch_size,
        workers=workers,
    )


def delivery_at(
    system: str,
    axis: str,
    magnitude: float,
    snr_db: float = DEFAULT_SNR_DB,
    n_frames: int = 10,
    seed: int = 7,
    workers: int = 0,
    **overrides: object,
) -> float:
    """Fraction of frames fully delivered at one sweep point."""
    return delivery_summary(
        system, axis, magnitude, snr_db, n_frames, seed, workers, **overrides
    ).summary.mean


def run(
    axes: Sequence[str] = ("cfo_ppm", "multipath_taps", "phase_noise_mrad"),
    systems: Sequence[str] = ("wifi", "sledzig", "zigbee"),
    snr_db: float = DEFAULT_SNR_DB,
    n_frames: int = 8,
    master_seed: int = 7,
    workers: int = 0,
) -> ExperimentResult:
    """Sweep each impairment axis for each system at one SNR."""
    result = ExperimentResult(
        experiment_id="Extension (robustness)",
        title=(
            f"Frame delivery vs impairment magnitude at {snr_db:g} dB SNR "
            "(hardened receivers)"
        ),
        columns=["axis", "magnitude", *systems],
    )
    for axis in axes:
        if axis not in AXES:
            raise ConfigurationError(
                f"unknown impairment axis {axis!r}; choose from {sorted(AXES)}"
            )
        for magnitude in AXES[axis]:
            deliveries = [
                delivery_at(
                    system, axis, magnitude, snr_db, n_frames,
                    seed=master_seed, workers=workers,
                )
                for system in systems
            ]
            result.add_row(axis, magnitude, *deliveries)
    result.notes.append(
        "CFO in crystal ppm at a 2.44 GHz carrier (40 ppm ~ 98 kHz); "
        "multipath is a Rayleigh tapped-delay line with 3 dB/tap decay; "
        "delivery at the zero/identity magnitude matches the clean channel"
    )
    return result
