"""Extension experiment: SledZig over a 40 MHz (HT40) WiFi channel.

The paper's footnote 1 claims the idea extends to wider channels; this
experiment quantifies it.  A 40 MHz channel at 2462 MHz (HT40- on primary
channel 13) overlaps eight ZigBee channels (19-26); for each the extra-bit
count, throughput loss and expected in-band decrease are computed, and a
real stream is built and verified through the (unchanged) convolutional
encoder.

Headline: doubling the channel roughly halves the relative overhead — the
worst HT40 loss is ~7.4 % versus 14.58 % at 20 MHz — because the extra bits
stay proportional to the protected 2 MHz band while N_DBPS doubles.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.base import ExperimentResult
from repro.sledzig.wideband import (
    build_wide_stream,
    wide_expected_decrease_db,
    wide_extra_bits_per_symbol,
    wide_overlap_channels,
    wide_throughput_loss,
)
from repro.utils.bits import random_bits
from repro.wifi.ht40 import get_ht40_mcs


def run(mcs_name: str = "ht40-qam64-2/3", seed: int = 17) -> ExperimentResult:
    """Tabulate the HT40 analysis over all eight overlapped channels."""
    mcs = get_ht40_mcs(mcs_name)
    rng = np.random.default_rng(seed)
    result = ExperimentResult(
        experiment_id="Extension (40 MHz)",
        title=f"SledZig over HT40 at 2462 MHz, {mcs.name} "
        f"({mcs.data_rate_mbps:.0f} Mbps)",
        columns=[
            "span",
            "zigbee ch",
            "data SC",
            "pilot",
            "extra/symbol",
            "loss %",
            "decrease dB",
            "verified",
        ],
    )
    for channel in wide_overlap_channels():
        k = wide_extra_bits_per_symbol(mcs.name, channel.zigbee_channel)
        capacity = 2 * (mcs.n_dbps - k)
        _, extra = build_wide_stream(
            mcs.name, channel.zigbee_channel, random_bits(capacity, rng), 2
        )
        result.add_row(
            channel.name,
            channel.zigbee_channel,
            len(channel.data_subcarriers),
            len(channel.pilot_subcarriers),
            k,
            100.0 * wide_throughput_loss(mcs.name, channel.zigbee_channel),
            wide_expected_decrease_db(mcs.name, channel.zigbee_channel),
            len(extra) == 2 * k,
        )
    result.notes.append(
        "worst-case loss ~7.4% vs 14.58% at 20 MHz: wider channels make "
        "protection cheaper (extra bits track the 2 MHz band, N_DBPS doubles)"
    )
    result.notes.append(
        "four of the eight spans contain an HT40 pilot and are decrease-"
        "limited exactly like CH1-CH3 at 20 MHz"
    )
    return result
