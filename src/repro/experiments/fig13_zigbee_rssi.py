"""Fig. 13: ZigBee RSSI versus link distance and transmit gain.

Pure propagation-model reproduction: the calibrated log-distance model with
the CC2420 gain table, floored at the -91 dB noise.  Paper anchors: -75 dB
at 0.5 m / gain 31; submerged in noise at 1 m below gain 15 and at >= 3 m
even at gain 25.
"""

from __future__ import annotations

from repro.channel.propagation import zigbee_rssi
from repro.experiments.base import ExperimentResult


def run() -> ExperimentResult:
    """Tabulate reported RSSI across (distance, gain)."""
    result = ExperimentResult(
        experiment_id="Fig. 13",
        title="ZigBee RSSI vs link distance d_Z and TX gain",
        columns=["d_z (m)", "gain 31", "gain 25", "gain 15", "gain 7", "gain 3"],
    )
    for d in (0.5, 1.0, 2.0, 3.0, 4.0):
        result.add_row(
            d,
            zigbee_rssi(d, 31, floor=True),
            zigbee_rssi(d, 25, floor=True),
            zigbee_rssi(d, 15, floor=True),
            zigbee_rssi(d, 7, floor=True),
            zigbee_rssi(d, 3, floor=True),
        )
    result.notes.append("noise floor -91 dB; paper anchor: -75 dB at 0.5 m, gain 31")
    result.notes.append(
        "at 3 m the signal reaches the noise floor even at gain 25 (paper)"
    )
    return result
