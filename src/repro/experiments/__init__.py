"""Experiment harness: one module per paper table/figure (see DESIGN.md)."""

from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
