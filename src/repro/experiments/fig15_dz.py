"""Fig. 15: ZigBee throughput vs its own link distance d_Z.

CH4, d_WZ fixed at 6 m (so even normal WiFi leaves ZigBee transmission
opportunities), sweeping d_Z from 1 m to 2 m.  Paper: throughput collapses
near d_Z = 1.6 m because the ZigBee signal sinks toward the noise floor;
SledZig cannot help there (the residual/preamble WiFi energy and noise
dominate) — the limitation Section IV-F concedes.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.experiments.base import ExperimentResult
from repro.mac.config import CoexistenceConfig, Topology, WifiConfig, ZigbeeConfig
from repro.mac.simulator import run_coexistence
from repro.montecarlo import seeding

CURVES: "Tuple[Tuple[str, Tuple[str, bool]], ...]" = (
    ("normal", ("qam256-3/4", False)),
    ("qam16", ("qam16-1/2", True)),
    ("qam64", ("qam64-2/3", True)),
    ("qam256", ("qam256-3/4", True)),
)

DEFAULT_DISTANCES: Tuple[float, ...] = (1.0, 1.2, 1.4, 1.6, 1.8, 2.0)


def sweep(
    distances: Sequence[float] = DEFAULT_DISTANCES,
    d_wz: float = 6.0,
    channel_index: int = 4,
    duration_us: float = 400_000.0,
    seed: int = 3,
) -> Dict[str, List[float]]:
    """All curves over the d_Z grid."""
    curves: Dict[str, List[float]] = {}
    for label, (mcs_name, sledzig) in CURVES:
        values = []
        for d_z in distances:
            config = CoexistenceConfig(
                wifi=WifiConfig(
                    mcs_name=mcs_name,
                    sledzig_channel=channel_index if sledzig else None,
                ),
                zigbee=ZigbeeConfig(channel_index=channel_index),
                topology=Topology(d_wz=d_wz, d_z=d_z),
                duration_us=duration_us,
                seed=seed,
            )
            rng = seeding.trial_rng(
                seed, f"fig15/{label}/d_z={d_z}/d_wz={d_wz}", 0
            )
            values.append(run_coexistence(config, rng=rng).zigbee_throughput_kbps)
        curves[label] = values
    return curves


def run(
    distances: Sequence[float] = DEFAULT_DISTANCES,
    duration_us: float = 400_000.0,
    master_seed: int = 3,
) -> ExperimentResult:
    """Fig. 15 as a table."""
    curves = sweep(distances, duration_us=duration_us, seed=master_seed)
    result = ExperimentResult(
        experiment_id="Fig. 15",
        title="ZigBee throughput (kbps) vs d_Z (CH4, d_WZ = 6 m, continuous WiFi)",
        columns=["d_z (m)"] + [label for label, _ in CURVES],
    )
    for i, d in enumerate(distances):
        result.add_row(d, *(curves[label][i] for label, _ in CURVES))
    result.notes.append(
        "paper: throughput is nearly zero at d_Z = 1.6 m and SledZig brings "
        "little improvement — the ZigBee SINR margin, not WiFi payload "
        "power, is the binding constraint"
    )
    return result
