"""Extension experiment: waveform-level cross-technology collisions.

Not a numbered paper figure — a signal-level validation of the paper's
central claim.  Real WiFi IQ waveforms (normal and SledZig) are mixed,
filtered and resampled into a ZigBee front end, collided with real
802.15.4 frames, and the frame delivery ratio is measured as a function of
how much stronger the WiFi link is on air.

Expected outcome: the maximum WiFi-over-ZigBee level a frame survives rises
by approximately the in-band decrease of Fig. 12 (e.g. ~11 dB for QAM-64 on
CH4) — i.e. the paper's power-domain argument holds for the actual
demodulator, chip by chip.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.channel.downconvert import inject_wifi_interference
from repro.experiments.base import ExperimentResult
from repro.sledzig.pipeline import SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter

DEFAULT_LEVELS_DB: "tuple[float, ...]" = (8.0, 11.0, 14.0, 17.0, 20.0, 23.0, 26.0, 29.0)


def delivery_ratio(
    wifi_waveform: np.ndarray,
    channel: str,
    wifi_over_zigbee_db: float,
    n_frames: int = 6,
    psdu_octets: int = 24,
    seed: int = 3,
) -> float:
    """Fraction of ZigBee frames decoded under the given WiFi collision."""
    rng = np.random.default_rng(seed)
    tx = ZigbeeTransmitter()
    rx = ZigbeeReceiver()
    delivered = 0
    for _ in range(n_frames):
        psdu = bytes(rng.integers(0, 256, size=psdu_octets, dtype=np.uint8))
        frame = tx.send(psdu)
        # Random phase offset into the (tiled) WiFi stream per frame.
        start = int(rng.integers(0, 400))
        mixed = inject_wifi_interference(
            frame.waveform,
            wifi_waveform[start:],
            channel,
            wifi_over_zigbee_db,
        )
        try:
            if rx.receive(mixed, start_sample=0).frame.psdu == psdu:
                delivered += 1
        except Exception:
            pass
    return delivered / n_frames


def sweep(
    mcs_name: str = "qam64-2/3",
    channel: str = "CH4",
    levels_db: Sequence[float] = DEFAULT_LEVELS_DB,
    n_frames: int = 6,
    seed: int = 3,
) -> Dict[str, List[float]]:
    """Delivery-ratio curves for normal and SledZig interference."""
    rng = np.random.default_rng(seed)
    normal = WifiTransmitter(mcs_name).transmit(random_bits(8 * 400, rng))
    payload = bytes(rng.integers(0, 256, size=380, dtype=np.uint8))
    sled = SledZigTransmitter(mcs_name, channel).send(payload)
    curves: Dict[str, List[float]] = {"normal": [], "sledzig": []}
    for level in levels_db:
        curves["normal"].append(
            delivery_ratio(normal.waveform[400:], channel, level, n_frames, seed=seed)
        )
        curves["sledzig"].append(
            delivery_ratio(sled.waveform[400:], channel, level, n_frames, seed=seed)
        )
    return curves


def run(
    mcs_name: str = "qam64-2/3",
    channel: str = "CH4",
    levels_db: Sequence[float] = DEFAULT_LEVELS_DB,
    n_frames: int = 6,
) -> ExperimentResult:
    """The collision sweep as a table."""
    curves = sweep(mcs_name, channel, levels_db, n_frames)
    result = ExperimentResult(
        experiment_id="Extension",
        title=(
            f"Waveform-level collision: ZigBee delivery ratio vs on-air "
            f"WiFi level ({mcs_name}, {channel})"
        ),
        columns=["WiFi over ZigBee (dB)", "normal", "sledzig"],
    )
    for i, level in enumerate(levels_db):
        result.add_row(level, curves["normal"][i], curves["sledzig"][i])
    result.notes.append(
        "SledZig shifts the tolerable on-air WiFi level up by roughly the "
        "Fig. 12 in-band decrease — the paper's premise verified against "
        "the actual DSSS demodulator"
    )
    return result
