"""Extension experiment: waveform-level cross-technology collisions.

Not a numbered paper figure — a signal-level validation of the paper's
central claim.  Real WiFi IQ waveforms (normal and SledZig) are mixed,
filtered and resampled into a ZigBee front end, collided with real
802.15.4 frames, and the frame delivery ratio is measured as a function of
how much stronger the WiFi link is on air.

Expected outcome: the maximum WiFi-over-ZigBee level a frame survives rises
by approximately the in-band decrease of Fig. 12 (e.g. ~11 dB for QAM-64 on
CH4) — i.e. the paper's power-domain argument holds for the actual
demodulator, chip by chip.

Each (waveform, level) point runs as a Monte-Carlo campaign on
:class:`repro.montecarlo.MonteCarloEngine`: trials draw their ZigBee
payload and collision phase from addressed streams, frames are built with
the batched 802.15.4 transmitter and decoded with the batched receiver, so
results are bit-identical at any batch or worker configuration.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, List, Sequence

import numpy as np

from repro.channel.downconvert import inject_wifi_interference
from repro.experiments.base import ExperimentResult
from repro.montecarlo import MonteCarloEngine
from repro.sledzig.pipeline import SledZigTransmitter
from repro.utils.bits import random_bits
from repro.wifi.transmitter import WifiTransmitter
from repro.zigbee.receiver import ZigbeeReceiver
from repro.zigbee.transmitter import ZigbeeTransmitter

DEFAULT_LEVELS_DB: "tuple[float, ...]" = (8.0, 11.0, 14.0, 17.0, 20.0, 23.0, 26.0, 29.0)


def _collision_batch(
    rngs: List[np.random.Generator],
    indices: Sequence[int],
    wifi_waveform: np.ndarray,
    channel: str,
    wifi_over_zigbee_db: float,
    psdu_octets: int,
) -> List[float]:
    """One batch of collision trials.

    Payload and collision phase come from each trial's stream; the frame
    build and final decode run batched (equal payload sizes share one DSSS/
    O-QPSK pass), while the physical WiFi-band injection stays per trial
    (each trial hits a different phase of the interferer).
    """
    tx = ZigbeeTransmitter()
    rx = ZigbeeReceiver()
    psdus = []
    starts = []
    for rng in rngs:
        psdus.append(bytes(rng.integers(0, 256, size=psdu_octets, dtype=np.uint8)))
        # Random phase offset into the (tiled) WiFi stream per frame.
        starts.append(int(rng.integers(0, 400)))
    frames = tx.send_frames(psdus)
    mixed = [
        inject_wifi_interference(
            frame.waveform,
            wifi_waveform[start:],
            channel,
            wifi_over_zigbee_db,
        )
        for frame, start in zip(frames, starts)
    ]
    receptions = rx.receive_frames(
        mixed, start_samples=[0] * len(mixed), on_error="none"
    )
    return [
        float(r is not None and r.frame.psdu == psdu)
        for r, psdu in zip(receptions, psdus)
    ]


def _collision_trial(
    rng: np.random.Generator,
    index: int,
    wifi_waveform: np.ndarray,
    channel: str,
    wifi_over_zigbee_db: float,
    psdu_octets: int,
) -> float:
    """Scalar reference trial (kept for the batch-equivalence tests)."""
    return _collision_batch(
        [rng], [index], wifi_waveform, channel, wifi_over_zigbee_db, psdu_octets
    )[0]


def delivery_ratio(
    wifi_waveform: np.ndarray,
    channel: str,
    wifi_over_zigbee_db: float,
    n_frames: int = 6,
    psdu_octets: int = 24,
    seed: int = 3,
    label: str = "",
) -> float:
    """Fraction of ZigBee frames decoded under the given WiFi collision."""
    engine = MonteCarloEngine(
        f"xtech_collision/{label or channel}/{wifi_over_zigbee_db:.2f}dB/"
        f"{psdu_octets}o",
        master_seed=seed,
        kind="proportion",
    )
    result = engine.run(
        batch_fn=partial(
            _collision_batch,
            wifi_waveform=wifi_waveform,
            channel=channel,
            wifi_over_zigbee_db=wifi_over_zigbee_db,
            psdu_octets=psdu_octets,
        ),
        n_trials=n_frames,
    )
    return result.summary.mean


def sweep(
    mcs_name: str = "qam64-2/3",
    channel: str = "CH4",
    levels_db: Sequence[float] = DEFAULT_LEVELS_DB,
    n_frames: int = 6,
    seed: int = 3,
) -> Dict[str, List[float]]:
    """Delivery-ratio curves for normal and SledZig interference."""
    rng = np.random.default_rng(seed)
    normal = WifiTransmitter(mcs_name).transmit(random_bits(8 * 400, rng))
    payload = bytes(rng.integers(0, 256, size=380, dtype=np.uint8))
    sled = SledZigTransmitter(mcs_name, channel).send(payload)
    curves: Dict[str, List[float]] = {"normal": [], "sledzig": []}
    for level in levels_db:
        curves["normal"].append(
            delivery_ratio(
                normal.waveform[400:], channel, level, n_frames, seed=seed,
                label=f"normal/{channel}",
            )
        )
        curves["sledzig"].append(
            delivery_ratio(
                sled.waveform[400:], channel, level, n_frames, seed=seed,
                label=f"sledzig/{channel}",
            )
        )
    return curves


def run(
    mcs_name: str = "qam64-2/3",
    channel: str = "CH4",
    levels_db: Sequence[float] = DEFAULT_LEVELS_DB,
    n_frames: int = 6,
    master_seed: int = 3,
) -> ExperimentResult:
    """The collision sweep as a table."""
    curves = sweep(mcs_name, channel, levels_db, n_frames, seed=master_seed)
    result = ExperimentResult(
        experiment_id="Extension",
        title=(
            f"Waveform-level collision: ZigBee delivery ratio vs on-air "
            f"WiFi level ({mcs_name}, {channel})"
        ),
        columns=["WiFi over ZigBee (dB)", "normal", "sledzig"],
    )
    for i, level in enumerate(levels_db):
        result.add_row(level, curves["normal"][i], curves["sledzig"][i])
    result.notes.append(
        "SledZig shifts the tolerable on-air WiFi level up by roughly the "
        "Fig. 12 in-band decrease — the paper's premise verified against "
        "the actual DSSS demodulator"
    )
    return result
