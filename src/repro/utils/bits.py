"""Bit-array helpers shared by every PHY stage.

The whole library represents bit streams as one-dimensional ``numpy`` arrays
of dtype ``uint8`` holding only the values 0 and 1.  These helpers convert
between that canonical form and bytes/integers/strings, and provide the
small structural operations (grouping, padding, interleaved indexing) the
802.11 and 802.15.4 chains need.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

import numpy as np

from repro.errors import EncodingError

BitsLike = Union[Sequence[int], np.ndarray, str]


def as_bits(bits: BitsLike) -> np.ndarray:
    """Return *bits* as a canonical uint8 0/1 array.

    Accepts any integer sequence, an existing ndarray, or a string of '0'/'1'
    characters (whitespace ignored).  Raises :class:`EncodingError` if any
    element is not 0 or 1.
    """
    if isinstance(bits, str):
        cleaned = "".join(bits.split())
        arr = np.frombuffer(cleaned.encode("ascii"), dtype=np.uint8) - ord("0")
    else:
        arr = np.asarray(bits, dtype=np.uint8).ravel()
    if arr.size and int(arr.max(initial=0)) > 1:
        raise EncodingError("bit arrays may contain only 0 and 1")
    return arr.astype(np.uint8, copy=False)


def bits_to_string(bits: BitsLike) -> str:
    """Render a bit array as a compact '0101...' string (for logs/tests)."""
    return "".join(str(int(b)) for b in as_bits(bits))


def bytes_to_bits(data: bytes, lsb_first: bool = True) -> np.ndarray:
    """Expand *data* into bits.

    802.11 and 802.15.4 both serialise octets least-significant-bit first,
    which is the default here.
    """
    arr = np.frombuffer(bytes(data), dtype=np.uint8)
    table = np.unpackbits(arr.reshape(-1, 1), axis=1)
    if lsb_first:
        table = table[:, ::-1]
    return table.ravel().astype(np.uint8)


def bits_to_bytes(bits: BitsLike, lsb_first: bool = True) -> bytes:
    """Pack a bit array (length divisible by 8) back into bytes."""
    arr = as_bits(bits)
    if arr.size % 8:
        raise EncodingError(
            f"cannot pack {arr.size} bits into whole octets (need multiple of 8)"
        )
    table = arr.reshape(-1, 8)
    if lsb_first:
        table = table[:, ::-1]
    return np.packbits(table, axis=1).ravel().tobytes()


def int_to_bits(value: int, width: int, lsb_first: bool = True) -> np.ndarray:
    """Encode a non-negative integer into exactly *width* bits."""
    if value < 0:
        raise EncodingError("cannot encode a negative integer as bits")
    if width < 0 or (width < value.bit_length()):
        raise EncodingError(f"{value} does not fit in {width} bits")
    bits = [(value >> i) & 1 for i in range(width)]
    if not lsb_first:
        bits.reverse()
    return np.array(bits, dtype=np.uint8)


def bits_to_int(bits: BitsLike, lsb_first: bool = True) -> int:
    """Collapse a bit array into an integer."""
    arr = as_bits(bits)
    if not lsb_first:
        arr = arr[::-1]
    return int(sum(int(b) << i for i, b in enumerate(arr)))


def random_bits(n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw *n* i.i.d. uniform bits from *rng*."""
    return rng.integers(0, 2, size=n, dtype=np.uint8)


def pad_bits(bits: BitsLike, multiple: int, value: int = 0) -> np.ndarray:
    """Right-pad *bits* with *value* up to the next multiple of *multiple*."""
    arr = as_bits(bits)
    remainder = arr.size % multiple
    if remainder == 0:
        return arr
    pad = np.full(multiple - remainder, value, dtype=np.uint8)
    return np.concatenate([arr, pad])


def group_bits(bits: BitsLike, group_size: int) -> np.ndarray:
    """Reshape a bit array into rows of *group_size* bits."""
    arr = as_bits(bits)
    if arr.size % group_size:
        raise EncodingError(
            f"{arr.size} bits do not divide into groups of {group_size}"
        )
    return arr.reshape(-1, group_size)


def hamming_distance(a: BitsLike, b: BitsLike) -> int:
    """Number of differing positions between two equal-length bit arrays."""
    xa, xb = as_bits(a), as_bits(b)
    if xa.size != xb.size:
        raise EncodingError(
            f"hamming_distance needs equal lengths ({xa.size} != {xb.size})"
        )
    return int(np.count_nonzero(xa != xb))


def bit_error_rate(reference: BitsLike, received: BitsLike) -> float:
    """Fraction of bit positions that differ (0.0 when both are empty)."""
    ref = as_bits(reference)
    if ref.size == 0:
        return 0.0
    return hamming_distance(reference, received) / ref.size


def insert_bits(
    stream: BitsLike, positions: Iterable[int], values: Iterable[int]
) -> np.ndarray:
    """Insert *values* so they land at *positions* of the final stream.

    Positions index the stream *after* all insertions (0-based), matching how
    SledZig describes extra-bit locations in the transmit stream.
    """
    base = list(as_bits(stream))
    pairs = sorted(zip(positions, as_bits(list(values))), key=lambda p: p[0])
    for pos, val in pairs:
        if pos > len(base):
            raise EncodingError(
                f"insertion position {pos} beyond stream length {len(base)}"
            )
        base.insert(pos, int(val))
    return np.array(base, dtype=np.uint8)


def remove_positions(stream: BitsLike, positions: Iterable[int]) -> np.ndarray:
    """Drop the bits at the given (final-stream, 0-based) positions."""
    arr = as_bits(stream)
    drop = set(int(p) for p in positions)
    bad = [p for p in drop if p < 0 or p >= arr.size]
    if bad:
        raise EncodingError(f"removal positions out of range: {sorted(bad)}")
    keep = np.ones(arr.size, dtype=bool)
    keep[list(drop)] = False
    return arr[keep]
