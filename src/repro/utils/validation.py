"""Parameter-validation helpers used across the library.

These wrap the common "validate and raise ConfigurationError" pattern so
constructors stay short and error messages stay consistent.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.errors import ConfigurationError


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with *message* unless *condition*."""
    if not condition:
        raise ConfigurationError(message)


def require_in(value: Any, allowed: Iterable[Any], name: str) -> None:
    """Require *value* to be one of *allowed*."""
    options = list(allowed)
    if value not in options:
        raise ConfigurationError(
            f"{name} must be one of {options}, got {value!r}"
        )


def require_range(
    value: float,
    name: str,
    minimum: Optional[float] = None,
    maximum: Optional[float] = None,
) -> None:
    """Require ``minimum <= value <= maximum`` (bounds optional)."""
    if minimum is not None and value < minimum:
        raise ConfigurationError(f"{name} must be >= {minimum}, got {value}")
    if maximum is not None and value > maximum:
        raise ConfigurationError(f"{name} must be <= {maximum}, got {value}")


def require_positive(value: float, name: str) -> None:
    """Require a strictly positive value."""
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")


def require_length(seq: Sequence[Any], length: int, name: str) -> None:
    """Require an exact sequence length."""
    if len(seq) != length:
        raise ConfigurationError(
            f"{name} must have length {length}, got {len(seq)}"
        )
