"""Small GF(2) linear-algebra toolkit.

SledZig's extra-bit determination (paper Section IV-D, Eq. 1) reduces to
solving tiny linear systems over GF(2): each convolutional-encoder output bit
is an inner product of a generator polynomial with the last seven input bits.
This module provides exactly that — inner products, matrix-vector products,
and a Gaussian-elimination solver — with no external dependencies.

The elimination kernels (:func:`gf2_rank`, :func:`gf2_solve`) dispatch
through the :mod:`repro.kernels` registry: the dense uint8 reference and
the packed-uint64 optimized backend produce identical pivots, solutions
and inconsistency errors (enforced by ``tests/kernels/`` and the
brute-force property tests in ``tests/utils/test_galois_properties.py``).
Matrix and rhs entries must be bits (0/1); behaviour on other values is
undefined.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError


def gf2_dot(a: Sequence[int], b: Sequence[int]) -> int:
    """Inner product of two equal-length GF(2) vectors (i.e. parity of AND)."""
    xa = np.asarray(a, dtype=np.uint8)
    xb = np.asarray(b, dtype=np.uint8)
    if xa.size != xb.size:
        raise EncodingError(f"gf2_dot length mismatch ({xa.size} != {xb.size})")
    return int(np.bitwise_and(xa, xb).sum() & 1)


def gf2_matvec(matrix: Sequence[Sequence[int]], vector: Sequence[int]) -> np.ndarray:
    """Matrix-vector product over GF(2)."""
    mat = np.asarray(matrix, dtype=np.uint8)
    vec = np.asarray(vector, dtype=np.uint8)
    return (mat @ vec % 2).astype(np.uint8)


def poly_to_taps(poly: int, constraint_length: int) -> np.ndarray:
    """Expand a generator polynomial into its tap vector.

    The 802.11 convention writes g0 = 133 (octal) = 1011011 (binary) with the
    most significant bit multiplying the *current* input bit x_n and the
    least significant bit multiplying x_{n-6}; the returned vector is ordered
    [x_n, x_{n-1}, ..., x_{n-K+1}] to match the paper's X_n layout.
    """
    bits = [(poly >> shift) & 1 for shift in range(constraint_length - 1, -1, -1)]
    return np.array(bits, dtype=np.uint8)


def gf2_solve(
    matrix: Sequence[Sequence[int]],
    rhs: Sequence[int],
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, bool]:
    """Solve ``A x = b`` over GF(2) by Gaussian elimination.

    Returns ``(solution, unique)``.  When the system is under-determined a
    particular solution is returned with free variables set to 0 and
    ``unique`` is False.  Raises :class:`EncodingError` if inconsistent.
    *backend* overrides the process-wide kernel selection.
    """
    from repro import kernels  # local: repro.utils imports before kernels

    a = np.ascontiguousarray(np.asarray(matrix, dtype=np.uint8))
    b = np.asarray(rhs, dtype=np.uint8).ravel().copy()
    if a.ndim != 2 or a.shape[0] != b.size:
        raise EncodingError("gf2_solve shape mismatch between matrix and rhs")
    return kernels.dispatch("gf2_solve", a.copy(), b, backend=backend)


def gf2_rank(
    matrix: Sequence[Sequence[int]], backend: Optional[str] = None
) -> int:
    """Rank of a GF(2) matrix (row-reduction count)."""
    from repro import kernels  # local: repro.utils imports before kernels

    a = np.ascontiguousarray(np.asarray(matrix, dtype=np.uint8))
    if a.ndim != 2:
        raise EncodingError("gf2_rank expects a 2-D matrix")
    return int(kernels.dispatch("gf2_rank", a.copy(), backend=backend))
