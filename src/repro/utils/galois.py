"""Small GF(2) linear-algebra toolkit.

SledZig's extra-bit determination (paper Section IV-D, Eq. 1) reduces to
solving tiny linear systems over GF(2): each convolutional-encoder output bit
is an inner product of a generator polynomial with the last seven input bits.
This module provides exactly that — inner products, matrix-vector products,
and a Gaussian-elimination solver — with no external dependencies.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import EncodingError


def gf2_dot(a: Sequence[int], b: Sequence[int]) -> int:
    """Inner product of two equal-length GF(2) vectors (i.e. parity of AND)."""
    xa = np.asarray(a, dtype=np.uint8)
    xb = np.asarray(b, dtype=np.uint8)
    if xa.size != xb.size:
        raise EncodingError(f"gf2_dot length mismatch ({xa.size} != {xb.size})")
    return int(np.bitwise_and(xa, xb).sum() & 1)


def gf2_matvec(matrix: Sequence[Sequence[int]], vector: Sequence[int]) -> np.ndarray:
    """Matrix-vector product over GF(2)."""
    mat = np.asarray(matrix, dtype=np.uint8)
    vec = np.asarray(vector, dtype=np.uint8)
    return (mat @ vec % 2).astype(np.uint8)


def poly_to_taps(poly: int, constraint_length: int) -> np.ndarray:
    """Expand a generator polynomial into its tap vector.

    The 802.11 convention writes g0 = 133 (octal) = 1011011 (binary) with the
    most significant bit multiplying the *current* input bit x_n and the
    least significant bit multiplying x_{n-6}; the returned vector is ordered
    [x_n, x_{n-1}, ..., x_{n-K+1}] to match the paper's X_n layout.
    """
    bits = [(poly >> shift) & 1 for shift in range(constraint_length - 1, -1, -1)]
    return np.array(bits, dtype=np.uint8)


def gf2_solve(
    matrix: Sequence[Sequence[int]], rhs: Sequence[int]
) -> Tuple[np.ndarray, bool]:
    """Solve ``A x = b`` over GF(2) by Gaussian elimination.

    Returns ``(solution, unique)``.  When the system is under-determined a
    particular solution is returned with free variables set to 0 and
    ``unique`` is False.  Raises :class:`EncodingError` if inconsistent.
    """
    a = np.asarray(matrix, dtype=np.uint8).copy()
    b = np.asarray(rhs, dtype=np.uint8).copy()
    if a.ndim != 2 or a.shape[0] != b.size:
        raise EncodingError("gf2_solve shape mismatch between matrix and rhs")
    rows, cols = a.shape
    pivot_cols: List[int] = []
    row = 0
    for col in range(cols):
        pivot = None
        for r in range(row, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != row:
            a[[row, pivot]] = a[[pivot, row]]
            b[[row, pivot]] = b[[pivot, row]]
        for r in range(rows):
            if r != row and a[r, col]:
                a[r] ^= a[row]
                b[r] ^= b[row]
        pivot_cols.append(col)
        row += 1
        if row == rows:
            break
    # Inconsistency: a zero row of A with nonzero rhs.
    for r in range(row, rows):
        if b[r] and not a[r].any():
            raise EncodingError("gf2_solve: inconsistent linear system")
    solution = np.zeros(cols, dtype=np.uint8)
    for r, col in enumerate(pivot_cols):
        solution[col] = b[r]
    return solution, len(pivot_cols) == cols


def gf2_rank(matrix: Sequence[Sequence[int]]) -> int:
    """Rank of a GF(2) matrix (row-reduction count)."""
    a = np.asarray(matrix, dtype=np.uint8).copy()
    if a.ndim != 2:
        raise EncodingError("gf2_rank expects a 2-D matrix")
    rows, cols = a.shape
    rank = 0
    for col in range(cols):
        pivot = None
        for r in range(rank, rows):
            if a[r, col]:
                pivot = r
                break
        if pivot is None:
            continue
        if pivot != rank:
            a[[rank, pivot]] = a[[pivot, rank]]
        for r in range(rows):
            if r != rank and a[r, col]:
                a[r] ^= a[rank]
        rank += 1
        if rank == rows:
            break
    return rank
