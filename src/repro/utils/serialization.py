"""JSON coercion helpers for experiment results and reports.

Experiment rows mix Python scalars with numpy scalars/arrays; ``jsonable``
maps any such leaf (or nested container of leaves) onto plain Python types
that :mod:`json` can serialise.
"""

from __future__ import annotations

from typing import Any

import numpy as np


def jsonable(value: Any) -> Any:
    """Recursively coerce *value* into JSON-serialisable Python types.

    Handles numpy scalars (including ``np.bool_``), numpy arrays (become
    nested lists), dicts, and arbitrary sequences (lists/tuples/sets become
    lists).  Anything else passes through unchanged.
    """
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [jsonable(item) for item in value.tolist()]
    if isinstance(value, dict):
        return {jsonable(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(item) for item in value]
    return value
