"""Decibel/linear conversions and power aggregation helpers.

Every RSSI, SINR and path-loss quantity in the library flows through these
functions so the dB conventions live in exactly one place.  Zero linear power
maps to ``-inf`` dB rather than raising, because "no signal present" is a
normal state for the coexistence simulator.
"""

from __future__ import annotations

from typing import Iterable, Union

import numpy as np

Number = Union[float, np.ndarray]


def db_to_linear(db: Number) -> Number:
    """Convert a power ratio in dB to linear scale."""
    return np.power(10.0, np.asarray(db, dtype=float) / 10.0) if isinstance(
        db, np.ndarray
    ) else 10.0 ** (float(db) / 10.0)


def linear_to_db(linear: Number) -> Number:
    """Convert a linear power ratio to dB (0 -> -inf, negatives rejected)."""
    arr = np.asarray(linear, dtype=float)
    if np.any(arr < 0):
        raise ValueError("linear power must be non-negative")
    with np.errstate(divide="ignore"):
        out = 10.0 * np.log10(arr)
    return out if isinstance(linear, np.ndarray) else float(out)


def dbm_to_watt(dbm: float) -> float:
    """Convert dBm to watts."""
    return 10.0 ** ((float(dbm) - 30.0) / 10.0)


def watt_to_dbm(watt: float) -> float:
    """Convert watts to dBm (0 W -> -inf dBm)."""
    if watt < 0:
        raise ValueError("power in watts must be non-negative")
    if watt == 0.0:
        return float("-inf")
    return 10.0 * np.log10(watt) + 30.0


def power_sum_db(levels_db: Iterable[float]) -> float:
    """Sum powers expressed in dB, returning the total in dB.

    Used when several interferers are on the air simultaneously: powers add
    linearly, so the combined level is ``10 log10(sum(10^(L/10)))``.
    """
    levels = [float(level) for level in levels_db]
    finite = [level for level in levels if level != float("-inf")]
    if not finite:
        return float("-inf")
    total = float(np.sum([10.0 ** (level / 10.0) for level in finite]))
    return float(10.0 * np.log10(total))


def signal_power(samples: np.ndarray) -> float:
    """Mean power of a complex baseband waveform (linear units)."""
    arr = np.asarray(samples)
    if arr.size == 0:
        return 0.0
    return float(np.mean(np.abs(arr) ** 2))


def signal_power_db(samples: np.ndarray) -> float:
    """Mean power of a waveform in dB relative to unit power."""
    return linear_to_db(signal_power(samples))


def sinr_db(signal_db: float, interference_db_levels: Iterable[float], noise_db: float) -> float:
    """Signal-to-interference-plus-noise ratio, all arguments in dB."""
    denom = power_sum_db(list(interference_db_levels) + [noise_db])
    return float(signal_db - denom)
