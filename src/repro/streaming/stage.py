"""Stage protocol and pipeline composition for streaming receive chains.

A streaming receive chain is a sequence of *stages*.  Each stage consumes
items (sample chunks for the first stage, upstream events for the rest),
carries whatever partial state it needs across calls, and emits zero or
more events per push:

* ``push(item) -> iterable of events`` — feed one item through the stage;
* ``flush() -> iterable of events`` — the stream ended; emit everything
  still decodable from buffered state (and typed drops for what is not).

The composition contract that makes chunking invisible: a stage's output
must depend only on the *content* of the stream, never on how the content
was sliced into chunks.  Sync stages achieve this by addressing samples
with absolute stream positions (see :class:`repro.streaming.ring.
SampleRing`) and deferring every decision until its full lookahead window
is buffered (or the stream is flushed).  The chunk-invariance property
tests (``tests/streaming/test_chunk_invariance.py``) pin this: any
chunking of a capture, including single-sample pushes and splits in the
middle of a preamble, decodes bit-identically to a one-chunk push.

:class:`StreamPipeline` composes stages, times each stage under a
telemetry span (``<prefix>.<stage.name>``) and cascades ``flush()`` so a
stage's flush output still flows through every downstream stage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, List, Optional, Protocol, Sequence, runtime_checkable

import numpy as np

from repro import telemetry
from repro.errors import ReproError

__all__ = [
    "DropEvent",
    "FrameEvent",
    "Stage",
    "StreamEvent",
    "StreamPipeline",
    "iter_chunks",
]


@dataclass
class StreamEvent:
    """Base class for everything a streaming stage emits.

    Attributes:
        start_sample: absolute stream position the event refers to (the
            first sample of a frame, or where a drop was declared).
    """

    start_sample: int


@dataclass
class FrameEvent(StreamEvent):
    """A fully decoded frame.

    Attributes:
        result: the technology-specific reception object
            (:class:`~repro.wifi.receiver.WifiReception`,
            :class:`~repro.zigbee.receiver.ZigbeeReception`, or
            :class:`~repro.sledzig.pipeline.SledZigReceivedPacket`).
    """

    result: Any = None


@dataclass
class DropEvent(StreamEvent):
    """A typed per-frame (or per-candidate) failure.

    Attributes:
        stage: name of the stage that declared the drop.
        error: the typed :class:`~repro.errors.ReproError` describing it.
        cause: the error's class name — the same token the receivers use
            in their ``*.drop.<cause>`` telemetry counters.
    """

    stage: str = ""
    error: Optional[ReproError] = None

    @property
    def cause(self) -> str:
        """Class name of the typed error (the drop-cause token)."""
        return type(self.error).__name__ if self.error is not None else "unknown"


@runtime_checkable
class Stage(Protocol):
    """Structural protocol every streaming stage implements."""

    name: str

    def push(self, item: Any) -> Iterable[Any]:
        """Feed one item; return the events it produced."""
        ...

    def flush(self) -> Iterable[Any]:
        """End of stream; drain buffered state into final events."""
        ...


class StreamPipeline:
    """Compose stages into one push/flush unit with per-stage telemetry.

    ``push(chunk)`` feeds the chunk to the first stage and threads every
    produced event through the remaining stages in order.  ``flush()``
    flushes stage *i*, runs its output through stages ``i+1..``, then
    flushes stage ``i+1`` — so buffered tail state anywhere in the chain
    still reaches the pipeline output.
    """

    def __init__(self, stages: Sequence[Stage], telemetry_prefix: str) -> None:
        if not stages:
            raise ValueError("a pipeline needs at least one stage")
        self.stages = list(stages)
        self._prefix = telemetry_prefix

    def _through(self, items: List[Any], first_stage: int) -> List[Any]:
        """Thread *items* through stages ``first_stage..`` in order."""
        tel = telemetry.current()
        for stage in self.stages[first_stage:]:
            if not items:
                break
            produced: List[Any] = []
            with tel.span(f"{self._prefix}.{stage.name}"):
                for item in items:
                    produced.extend(stage.push(item))
            items = produced
        return items

    def push(self, chunk: np.ndarray) -> List[Any]:
        """Feed one sample chunk through the whole chain."""
        tel = telemetry.current()
        with tel.span(f"{self._prefix}.{self.stages[0].name}"):
            items = list(self.stages[0].push(chunk))
        return self._through(items, 1)

    def flush(self) -> List[Any]:
        """End of stream: cascade ``flush()`` down the chain.

        Stage *i*'s flush output still passes through stages ``i+1..``
        (as ordinary pushes) before stage ``i+1``'s own flush runs, so
        event order matches the stream order end to end.
        """
        tel = telemetry.current()
        out: List[Any] = []
        for index, stage in enumerate(self.stages):
            with tel.span(f"{self._prefix}.{stage.name}"):
                produced = list(stage.flush())
            out.extend(self._through(produced, index + 1))
        return out

    def run(self, chunks: Iterable[np.ndarray]) -> List[Any]:
        """Convenience: push every chunk, flush, return all events."""
        events: List[Any] = []
        for chunk in chunks:
            events.extend(self.push(chunk))
        events.extend(self.flush())
        return events


def iter_chunks(
    waveform: np.ndarray, sizes: "int | Sequence[int]"
) -> Iterable[np.ndarray]:
    """Split a full capture into chunks for feeding a pipeline.

    *sizes* is either one fixed chunk length or an explicit sequence of
    lengths (the property tests draw pathological sequences here); a
    trailing remainder shorter than the requested size is yielded as-is,
    and an exhausted explicit sequence falls back to its last size.
    """
    arr = np.asarray(waveform).ravel()
    if np.ndim(sizes) == 0:
        plan = [int(sizes)]
    else:
        plan = [int(s) for s in sizes]
    if any(s <= 0 for s in plan):
        raise ValueError(f"chunk sizes must be positive, got {plan}")
    pos = 0
    index = 0
    while pos < arr.size:
        size = plan[index] if index < len(plan) else plan[-1]
        yield arr[pos : pos + size]
        pos += size
        index += 1
