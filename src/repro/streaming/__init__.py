"""Streaming receive infrastructure: chunked, stateful, constant-memory.

Every receiver in this library originally demanded the entire capture in
memory before a single frame decoded.  This package provides the layer
that lifts that limit:

* :class:`~repro.streaming.ring.SampleRing` — a bounded ring buffer over
  the tail of an unbounded sample stream, addressed by absolute stream
  position, with occupancy/high-water telemetry gauges;
* :class:`~repro.streaming.stage.Stage` — the ``push(chunk) -> events`` /
  ``flush() -> events`` protocol streaming stages implement;
* :class:`~repro.streaming.stage.StreamPipeline` — stage composition with
  per-stage telemetry spans and cascaded flush.

The technology-specific front ends live next to their batch receivers:
:class:`repro.wifi.streaming.WifiStreamReceiver`,
:class:`repro.zigbee.streaming.ZigbeeStreamReceiver` and
:class:`repro.sledzig.streaming.SledZigStreamReceiver`.  Their decode
output is bit-identical for *any* chunking of a capture — including the
degenerate one-chunk push, which is exactly how the classic full-buffer
``decode_frames`` entry points are now implemented.
"""

from repro.streaming.ring import SampleRing
from repro.streaming.stage import (
    DropEvent,
    FrameEvent,
    Stage,
    StreamEvent,
    StreamPipeline,
    iter_chunks,
)

__all__ = [
    "DropEvent",
    "FrameEvent",
    "SampleRing",
    "Stage",
    "StreamEvent",
    "StreamPipeline",
    "iter_chunks",
]
