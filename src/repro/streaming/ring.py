"""Bounded sample ring buffer with absolute stream indexing.

The streaming receivers consume an unbounded sample stream in chunks but
must hand their decode stages contiguous windows (a WiFi PPDU, a ZigBee
frame).  :class:`SampleRing` provides exactly that: a fixed-capacity buffer
addressed by *absolute* stream position, so stage state ("the SIGNAL symbol
starts at sample 181_440") survives any chunking of the input.

Implementation: a contiguous numpy array with left-compaction.  Appends
copy each chunk exactly once; when the physical tail is reached, the
retained window is moved to the front (amortised O(1) per sample, since a
sample is moved at most once per ``capacity`` appended samples).  A true
circular layout would save the compaction memmove but force a copy on
every contiguous read — and reads dominate here.

Memory bound: the buffer never grows.  ``high_water`` records the peak
retained occupancy; the constant-memory experiments assert it stays flat
as captures grow, via the ``stream.ring.<name>.high_water`` telemetry
gauge published on every append.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, StreamOverflowError

__all__ = ["SampleRing"]


class SampleRing:
    """Fixed-capacity window over the tail of an unbounded sample stream.

    Attributes:
        capacity: maximum number of retained samples.
        start: absolute index of the oldest retained sample.
        end: absolute index one past the newest retained sample.
        high_water: peak occupancy ever observed (samples).
    """

    __slots__ = ("_buf", "_offset", "_length", "start", "high_water", "_name")

    def __init__(
        self,
        capacity: int,
        dtype: "np.dtype | type" = np.complex128,
        name: Optional[str] = None,
    ) -> None:
        """Args:
        capacity: maximum retained samples; appends that would exceed it
            raise :class:`repro.errors.StreamOverflowError`.
        dtype: element type (complex baseband by default).
        name: when given, occupancy and high-water gauges are published as
            ``stream.ring.<name>.occupancy`` / ``...high_water`` on every
            append, so run manifests capture the memory profile.
        """
        if capacity <= 0:
            raise ConfigurationError(f"ring capacity must be positive, got {capacity}")
        self._buf = np.zeros(int(capacity), dtype=dtype)
        self._offset = 0  # physical index of the oldest retained sample
        self._length = 0
        self.start = 0  # absolute stream index of the oldest retained sample
        self.high_water = 0
        self._name = name

    @property
    def capacity(self) -> int:
        """Maximum number of retained samples."""
        return self._buf.size

    @property
    def end(self) -> int:
        """Absolute index one past the newest retained sample."""
        return self.start + self._length

    @property
    def occupancy(self) -> int:
        """Currently retained samples."""
        return self._length

    def append(self, chunk: np.ndarray) -> None:
        """Append *chunk* at the stream tail (one copy).

        Raises :class:`StreamOverflowError` if the retained window plus the
        chunk cannot fit the capacity — the caller must release consumed
        samples first (a streaming stage that cannot is asking for more
        lookahead than its declared bound).
        """
        arr = np.asarray(chunk, dtype=self._buf.dtype).ravel()
        if self._length + arr.size > self._buf.size:
            raise StreamOverflowError(
                f"ring of {self._buf.size} samples cannot hold "
                f"{self._length} retained + {arr.size} new samples"
            )
        if self._offset + self._length + arr.size > self._buf.size:
            # Compact: move the retained window to the physical front.
            self._buf[: self._length] = self._buf[
                self._offset : self._offset + self._length
            ]
            self._offset = 0
        self._buf[
            self._offset + self._length : self._offset + self._length + arr.size
        ] = arr
        self._length += arr.size
        if self._length > self.high_water:
            self.high_water = self._length
        if self._name is not None:
            tel = telemetry.current()
            tel.gauge(f"stream.ring.{self._name}.occupancy", self._length)
            tel.gauge(f"stream.ring.{self._name}.high_water", self.high_water)

    def view(self, lo: int, hi: int) -> np.ndarray:
        """Read-only view of absolute sample range ``[lo, hi)``.

        The range must be retained (``start <= lo <= hi <= end``).  The
        view aliases the ring storage — copy it before the next append if
        it must outlive this position of the stream.
        """
        if not self.start <= lo <= hi <= self.end:
            raise ConfigurationError(
                f"range [{lo}, {hi}) outside retained window "
                f"[{self.start}, {self.end})"
            )
        phys = self._offset + (lo - self.start)
        return self._buf[phys : phys + (hi - lo)]

    def release(self, up_to: int) -> None:
        """Discard samples with absolute index below *up_to* (no copy).

        Releasing below ``start`` is a no-op; releasing beyond ``end`` is
        clamped to ``end`` (the stream position may legitimately skip ahead
        past a decoded frame whose tail samples have not arrived yet —
        those samples are dropped on arrival by the caller, not here).
        """
        up_to = min(max(up_to, self.start), self.end)
        drop = up_to - self.start
        self._offset += drop
        self._length -= drop
        self.start = up_to
