"""Lightweight metrics/tracing for the PHY/MC/MAC stack.

See :mod:`repro.telemetry.core` for the collector model (context-local
collectors, snapshot/merge discipline, determinism guarantees) and
:mod:`repro.telemetry.manifest` for the ``--metrics-out`` run manifest.
"""

from repro.telemetry.core import (
    Histogram,
    Snapshot,
    Telemetry,
    collect,
    current,
    use,
)
from repro.telemetry.manifest import append_line, config_digest, run_record
from repro.telemetry.quantiles import Reservoir, percentile

__all__ = [
    "Histogram",
    "Reservoir",
    "Snapshot",
    "Telemetry",
    "append_line",
    "collect",
    "config_digest",
    "current",
    "percentile",
    "run_record",
    "use",
]
