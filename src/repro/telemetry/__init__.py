"""Lightweight metrics/tracing for the PHY/MC/MAC stack.

See :mod:`repro.telemetry.core` for the collector model (context-local
collectors, snapshot/merge discipline, determinism guarantees) and
:mod:`repro.telemetry.manifest` for the ``--metrics-out`` run manifest.
"""

from repro.telemetry.core import (
    Histogram,
    Snapshot,
    Telemetry,
    collect,
    current,
    use,
)
from repro.telemetry.manifest import append_line, config_digest, run_record

__all__ = [
    "Histogram",
    "Snapshot",
    "Telemetry",
    "append_line",
    "collect",
    "config_digest",
    "current",
    "run_record",
    "use",
]
