"""Bounded, deterministic quantile tracking for SLO reporting.

The :class:`~repro.telemetry.core.Histogram` keeps exact count/total/
min/max — enough for means, useless for tail latency.  The gateway's SLOs
(p50/p99 encode latency) need order statistics, but an unbounded sample
list would tie memory to request volume, the exact failure mode the
serving layer exists to avoid.  :class:`Reservoir` stores at most ``cap``
samples with *stride decimation*: once full, the retained set is thinned
to every other sample and the sampling stride doubles, so a reservoir
that has seen N observations keeps a deterministic, evenly spaced subset
of them.  Unlike random reservoir sampling, two runs over the same
observation sequence hold bit-identical state — the same discipline as
every other deterministic structure in :mod:`repro.telemetry`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.errors import ConfigurationError

__all__ = ["Reservoir", "percentile"]


def percentile(values: Sequence[float], q: float) -> float:
    """The *q*-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default ("linear") method without
    requiring the values as an array; 0.0 when *values* is empty.
    """
    if not 0.0 <= q <= 100.0:
        raise ConfigurationError(f"percentile {q} outside 0..100")
    if not values:
        return 0.0
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    frac = rank - low
    # One-product lerp: never escapes [ordered[low], ordered[high]], even
    # when both endpoints are equal (the two-product blend can overshoot
    # by an ulp because float (1-frac)+frac may exceed 1).
    return ordered[low] + frac * (ordered[high] - ordered[low])


class Reservoir:
    """Bounded observation store with deterministic stride decimation.

    Observations are kept verbatim until ``cap`` is reached; then every
    other retained sample is dropped and only every ``stride``-th future
    observation is recorded (stride doubling each time the cap is hit
    again).  ``count`` always reflects the true number of observations.
    """

    __slots__ = ("cap", "count", "stride", "_samples")

    def __init__(self, cap: int = 4096) -> None:
        if cap < 2:
            raise ConfigurationError("reservoir cap must be at least 2")
        self.cap = int(cap)
        self.count = 0
        self.stride = 1
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation (possibly decimated away).

        Raises:
            ConfigurationError: on a non-finite value.  A NaN latency
                would sort unpredictably and silently poison every
                percentile the reservoir ever reports; rejecting it at
                the door keeps ``to_jsonable`` trustworthy.
        """
        value = float(value)
        if math.isnan(value) or math.isinf(value):
            raise ConfigurationError(
                f"reservoir observations must be finite, got {value!r}"
            )
        self.count += 1
        if (self.count - 1) % self.stride != 0:
            return
        if len(self._samples) >= self.cap:
            # Thin to every other sample and halve the future sample rate.
            self._samples = self._samples[::2]
            self.stride *= 2
            if (self.count - 1) % self.stride != 0:
                return
        self._samples.append(value)

    @property
    def samples(self) -> List[float]:
        """The retained (evenly strided) samples, in observation order."""
        return list(self._samples)

    def percentile(self, q: float) -> float:
        """The *q*-th percentile of the retained samples."""
        return percentile(self._samples, q)

    def to_jsonable(self) -> Dict[str, float]:
        """SLO summary: count plus p50/p90/p99/max over retained samples."""
        return {
            "count": self.count,
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
            "max": max(self._samples) if self._samples else 0.0,
        }
