"""Dependency-free metrics core: counters, gauges, histogram timers, spans.

The library's observability layer follows the same discipline as
:mod:`repro.montecarlo` seeding: work that may run serially, batched, or in
worker processes must produce *identical* metrics either way.  The model:

* every piece of instrumented code reports into the **active**
  :class:`Telemetry` collector (``current()``), a context-local object;
* code that fans out to worker processes runs each unit of work under a
  fresh collector (:func:`collect`), ships the resulting
  :class:`Snapshot` back, and merges it into the parent **in submission
  order** — the same order the serial path executes, so the merged
  counters and gauges are bit-identical with a serial run;
* wall-clock data (histogram timers recorded by :meth:`Telemetry.span`)
  is inherently non-deterministic and is therefore excluded from
  :meth:`Snapshot.deterministic`, the comparison view the determinism
  tests pin down.

Counters sum under merge, gauges take the later write, histograms combine
their moments — all three operations are associative, so nested fan-out
(runner worker -> Monte-Carlo batch worker) merges cleanly.

Overhead is a few dict operations per *batch-level* event; the hot
per-sample loops are never instrumented (the benchmark suite holds the
batch-32 WiFi roundtrip within a few percent of its uninstrumented cost).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

__all__ = [
    "Histogram",
    "Snapshot",
    "Telemetry",
    "collect",
    "current",
    "use",
]


@dataclass
class Histogram:
    """Streaming summary of observed values (count/total/min/max).

    Enough to report means and extremes of stage timings without storing
    samples; merging two histograms is exact (no binning error).
    """

    count: int = 0
    total: float = 0.0
    minimum: float = float("inf")
    maximum: float = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    def merge(self, other: "Histogram") -> None:
        """Fold *other*'s observations into this histogram."""
        self.count += other.count
        self.total += other.total
        if other.minimum < self.minimum:
            self.minimum = other.minimum
        if other.maximum > self.maximum:
            self.maximum = other.maximum

    @property
    def mean(self) -> float:
        """Mean observation (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def to_jsonable(self) -> Dict[str, float]:
        """Plain-dict form for the run manifest."""
        if self.count == 0:
            return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }

    def copy(self) -> "Histogram":
        """An independent copy."""
        return Histogram(self.count, self.total, self.minimum, self.maximum)


@dataclass
class Snapshot:
    """Frozen view of a collector's state, safe to pickle across processes.

    Attributes:
        counters: monotonically accumulated event counts (sum under merge).
        gauges: last-written values (later write wins under merge).
        timers: wall-clock histograms in seconds (combined under merge;
            excluded from :meth:`deterministic`).
    """

    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    timers: Dict[str, Histogram] = field(default_factory=dict)

    def merge(self, other: "Snapshot") -> "Snapshot":
        """Fold *other* into this snapshot (in place) and return self."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(other.gauges)
        for name, hist in other.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = hist.copy()
            else:
                mine.merge(hist)
        return self

    def deterministic(self) -> Dict[str, Dict[str, float]]:
        """The order-and-process-invariant part (counters + gauges).

        Two runs of the same seeded workload — serial, batched, or across
        any number of workers — produce equal ``deterministic()`` views;
        ``timers`` are wall clock and excluded.
        """
        return {"counters": dict(self.counters), "gauges": dict(self.gauges)}

    def drop_causes(self) -> Dict[str, float]:
        """The drop-cause table: every ``*.drop.<cause>`` counter."""
        return {k: v for k, v in self.counters.items() if ".drop." in k}

    def to_jsonable(self) -> Dict[str, object]:
        """Plain nested dicts for JSON serialisation."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "timers": {k: h.to_jsonable() for k, h in self.timers.items()},
        }


class Telemetry:
    """A mutable metrics collector (see the module docstring for the model)."""

    __slots__ = ("counters", "gauges", "timers")

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.timers: Dict[str, Histogram] = {}

    def count(self, name: str, n: float = 1) -> None:
        """Add *n* (int or float) to counter *name*."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (later writes win)."""
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram timer *name*."""
        hist = self.timers.get(name)
        if hist is None:
            hist = self.timers[name] = Histogram()
        hist.observe(value)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a stage: records the elapsed seconds into timer *name*."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start)

    def snapshot(self) -> Snapshot:
        """An independent, picklable copy of the current state."""
        return Snapshot(
            counters=dict(self.counters),
            gauges=dict(self.gauges),
            timers={k: h.copy() for k, h in self.timers.items()},
        )

    def merge(self, snapshot: Snapshot) -> None:
        """Fold a worker's snapshot into this collector."""
        for name, value in snapshot.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(snapshot.gauges)
        for name, hist in snapshot.timers.items():
            mine = self.timers.get(name)
            if mine is None:
                self.timers[name] = hist.copy()
            else:
                mine.merge(hist)

    def reset(self) -> None:
        """Clear every metric."""
        self.counters.clear()
        self.gauges.clear()
        self.timers.clear()


#: Process-wide fallback collector: instrumented code always has somewhere
#: to report, even outside any explicit ``collect()`` scope.
_GLOBAL = Telemetry()

_ACTIVE: "ContextVar[Optional[Telemetry]]" = ContextVar(
    "repro_telemetry", default=None
)


def current() -> Telemetry:
    """The active collector (the process-wide one outside any scope)."""
    active = _ACTIVE.get()
    return active if active is not None else _GLOBAL


@contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make *telemetry* the active collector within the ``with`` block."""
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)


@contextmanager
def collect() -> Iterator[Telemetry]:
    """Run the block under a fresh collector (the worker-scope idiom).

    The yielded collector is isolated from the parent scope; snapshot it
    inside (or after) the block and merge into the parent explicitly —
    fan-out code merges worker snapshots in submission order to stay
    bit-identical with serial execution.
    """
    with use(Telemetry()) as telemetry:
        yield telemetry
