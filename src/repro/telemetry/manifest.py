"""Run-manifest records: one JSON line per executed experiment.

The experiment runner's ``--metrics-out PATH`` appends one
:func:`run_record` per experiment — experiment id, seed, a digest of the
effective configuration, per-stage timings, the drop-cause table, and the
full counter set — so a sweep's provenance and its failure taxonomy live
next to its results instead of being scrolled away on stderr.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, Optional

from repro.telemetry.core import Snapshot
from repro.utils.serialization import jsonable

__all__ = ["append_line", "config_digest", "run_record"]


def config_digest(config: Any) -> str:
    """Stable short digest of an experiment configuration.

    Canonical-JSON (sorted keys) over the :func:`jsonable` form, hashed
    with SHA-256 — the same digest on every platform and Python version,
    so manifest lines from different machines are comparable.
    """
    canonical = json.dumps(jsonable(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def run_record(
    name: str,
    *,
    config: Any,
    seconds: float,
    snapshot: Optional[Snapshot] = None,
    experiment_id: Optional[str] = None,
    title: Optional[str] = None,
    status: str = "ok",
    error: Optional[str] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build one manifest record (a plain JSON-serialisable dict).

    Args:
        name: registry key of the experiment.
        config: the effective run configuration (digested, and embedded).
        seconds: wall-clock duration of the experiment.
        snapshot: the experiment's metric snapshot (omitted on failure).
        experiment_id / title: from the :class:`ExperimentResult`.
        status: ``"ok"`` or ``"failed"``.
        error: ``"ExcType: message"`` when *status* is ``"failed"``.
        extra: extra top-level keys (e.g. the gateway's ``slo`` object);
            must not collide with the record's own keys.
    """
    record: Dict[str, Any] = {
        "experiment": name,
        "id": experiment_id,
        "title": title,
        "status": status,
        "config": jsonable(config),
        "config_digest": config_digest(config),
        "seconds": round(float(seconds), 4),
    }
    if error is not None:
        record["error"] = error
    if snapshot is not None:
        record["counters"] = dict(snapshot.counters)
        record["gauges"] = dict(snapshot.gauges)
        record["drops"] = snapshot.drop_causes()
        record["timings"] = {
            k: h.to_jsonable() for k, h in snapshot.timers.items()
        }
    if extra:
        collisions = set(extra) & set(record)
        if collisions:
            raise ValueError(
                f"manifest extras collide with record keys: {sorted(collisions)}"
            )
        record.update(jsonable(extra))
    return record


def append_line(path: str, record: Dict[str, Any]) -> None:
    """Append *record* to the JSONL manifest at *path*."""
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
