"""Significant-bit derivation (paper Sections IV-A to IV-C).

A *significant bit* is a transmitted coded bit whose value must be fixed so
that the QAM point on an overlapped subcarrier is one of the four
lowest-power points.  Walking the standard chain backwards:

1. Constellation (Section IV-A): for QAM-2^(2m) the point's bit offsets
   1..m-1 and m+1..2m-1 must be 1, 0, ..., 0 (Table I).
2. Subcarrier mapping: the point on data subcarrier d (0..47) consumes
   interleaved bits [d*N_BPSC, (d+1)*N_BPSC).
3. Interleaver inverse (Section IV-C): output position j came from
   post-puncture stream position k = deinterleave_permutation[j].
4. Depuncture: post-puncture position k corresponds to mother-code position
   y_p; at rate 1/2 they coincide.

The result is the paper's {v_k, p_k}: values and positions in the
pre-puncture coded stream of one OFDM symbol.  Positions repeat every
symbol with a stride of 2 * N_DBPS mother-code bits.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.wifi.constellation import significant_bit_pattern
from repro.wifi.interleaver import deinterleave_permutation
from repro.wifi.params import Mcs, data_subcarrier_index, get_mcs
from repro.wifi.puncture import kept_indices


@dataclass(frozen=True)
class SignificantBit:
    """One constraint on the mother-code (pre-puncture) stream.

    Attributes:
        position: 0-based index into the mother-code stream of one OFDM
            symbol (the paper's p_k is this + 1).
        value: required bit value.
        subcarrier: logical subcarrier index the bit lands on.
        bit_offset: offset of the bit within its QAM point.
    """

    position: int
    value: int
    subcarrier: int
    bit_offset: int

    @property
    def encoder_step(self) -> int:
        """0-based convolutional-encoder step n producing this output."""
        return self.position // 2

    @property
    def branch(self) -> int:
        """Which generator produced it: 0 -> g0 (y_{2n-1}), 1 -> g1 (y_{2n})."""
        return self.position % 2


@lru_cache(maxsize=None)
def _significant_bits_cached(
    mcs_name: str, channel_key: Tuple[int, int, Tuple[int, ...]]
) -> Tuple[SignificantBit, ...]:
    mcs = get_mcs(mcs_name)
    _, _, data_subcarriers = channel_key
    if mcs.modulation in ("bpsk", "qpsk"):
        raise ConfigurationError(
            f"SledZig requires QAM-16 or higher; {mcs.modulation} has no "
            "reduced-power constellation points"
        )
    pattern = significant_bit_pattern(mcs.modulation)
    inverse = deinterleave_permutation(mcs.n_cbps, mcs.n_bpsc)
    kept = kept_indices(2 * mcs.n_dbps, mcs.coding_rate)
    bits: List[SignificantBit] = []
    for logical in data_subcarriers:
        d = data_subcarrier_index(logical)
        for offset, value in pattern.items():
            output_index = d * mcs.n_bpsc + offset
            post_puncture = inverse[output_index]
            mother_position = int(kept[post_puncture])
            bits.append(
                SignificantBit(
                    position=mother_position,
                    value=int(value),
                    subcarrier=logical,
                    bit_offset=offset,
                )
            )
    bits.sort(key=lambda b: b.position)
    positions = [b.position for b in bits]
    if len(set(positions)) != len(positions):
        raise ConfigurationError(
            "two significant bits map to the same coded position — "
            "inconsistent chain configuration"
        )
    return tuple(bits)


def significant_bits_for_symbol(
    mcs: "Mcs | str", channel: "int | str | OverlapChannel"
) -> Tuple[SignificantBit, ...]:
    """All significant bits of one OFDM symbol, sorted by position.

    Positions are 0-based indices into the symbol's mother-code stream of
    2 * N_DBPS bits; add ``s * 2 * N_DBPS`` for symbol s of a frame.
    """
    mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
    ch = get_channel(channel)
    key = (ch.index, ch.wifi_channel, ch.data_subcarriers)
    return _significant_bits_cached(mcs.name, key)


def significant_positions_paper(
    mcs: "Mcs | str", channel: "int | str | OverlapChannel"
) -> List[int]:
    """The paper's 1-based p_k list for one OFDM symbol (Table II format)."""
    return [b.position + 1 for b in significant_bits_for_symbol(mcs, channel)]


def extra_bits_per_symbol(
    mcs: "Mcs | str", channel: "int | str | OverlapChannel"
) -> int:
    """Number of extra bits SledZig inserts per OFDM symbol.

    One extra bit satisfies one significant bit (paper Section IV-D), so the
    count equals the number of significant bits: (data subcarriers in the
    overlap) x (significant bits per QAM point).
    """
    return len(significant_bits_for_symbol(mcs, channel))


def constraint_map_for_symbols(
    mcs: "Mcs | str",
    channel: "int | str | OverlapChannel",
    n_symbols: int,
) -> Dict[int, Tuple[int, SignificantBit]]:
    """Constraints for a whole frame, keyed by global mother-code position.

    Returns ``{global position: (value, per-symbol SignificantBit)}`` for
    *n_symbols* OFDM symbols.
    """
    mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
    per_symbol = significant_bits_for_symbol(mcs, channel)
    stride = 2 * mcs.n_dbps
    out: Dict[int, Tuple[int, SignificantBit]] = {}
    for s in range(n_symbols):
        for bit in per_symbol:
            out[s * stride + bit.position] = (bit.value, bit)
    return out
