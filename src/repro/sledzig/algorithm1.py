"""Literal transcription of the paper's Algorithm 1 (transmit bits generation).

This is the reference implementation of the insertion procedure exactly as
printed: scan the scrambled data bits; when the next encoder step carries a
*single* significant bit, insert one extra bit x_n solved from Eq. 1; when
it carries *twin* significant bits, insert two extra bits at positions n-1
and n-5 (shifting the intervening bits up, lines 15-26 of the listing).

The algorithm presumes the deinterleaver scattered significant bits so far
apart that a twin never lands within six steps of another constraint.  That
holds for the paper's bit-labelling; under this library's 802.11 labelling
a few configurations violate it, in which case this function raises
:class:`~repro.errors.InsertionError` — the production encoder
(:mod:`repro.sledzig.insertion`) handles those with its cluster solver.
Both implementations insert exactly one extra bit per significant bit and
produce streams verified by the same :func:`verify_stream` check, which the
test suite uses to cross-validate them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import InsertionError
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.sledzig.significant import significant_bits_for_symbol
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.convolutional import G0_TAPS, G1_TAPS
from repro.wifi.params import Mcs, get_mcs


def _window(stream: List[int], n: int, override: Dict[int, int]) -> List[int]:
    """X_n = [x_n, x_{n-1}, ..., x_{n-6}] with zeros before the stream."""
    out = []
    for lag in range(7):
        idx = n - lag
        if idx in override:
            out.append(override[idx])
        elif idx < 0:
            out.append(0)
        else:
            out.append(stream[idx])
    return out


def _output(window: Sequence[int], branch: int) -> int:
    taps = G0_TAPS if branch == 0 else G1_TAPS
    return int(np.bitwise_and(taps, np.asarray(window, dtype=np.uint8)).sum() & 1)


def generate_transmit_bits(
    scrambled_data: BitsLike,
    mcs: "Mcs | str",
    channel: "int | str | OverlapChannel",
) -> Tuple[np.ndarray, List[int]]:
    """Run Algorithm 1 over scrambled data bits.

    Args:
        scrambled_data: the paper's {x'_i} — scrambled WiFi data bits.
        mcs: must use coding rate 1/2 (the case the listing covers).
        channel: overlap channel supplying the significant bits.

    Returns ``(transmit_stream, extra_positions)`` where the stream is the
    paper's {x_n} (scrambled domain) and positions are 0-based indices of
    inserted extra bits.  The stream ends when the data bits are exhausted,
    mid-symbol if need be (framing is the encoder's job, not the
    algorithm's).
    """
    mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
    if mcs.coding_rate != "1/2":
        raise InsertionError(
            "Algorithm 1 as printed covers rate-1/2 encoding; use the "
            "cluster solver for punctured rates"
        )
    ch = get_channel(channel)
    data = list(as_bits(scrambled_data))

    per_symbol = significant_bits_for_symbol(mcs, ch)
    # Constraint lookup: mother-code position (0-based) -> value, unbounded
    # over symbols via the per-symbol stride.
    stride = 2 * mcs.n_dbps
    per_symbol_map = {bit.position: bit.value for bit in per_symbol}

    def constraint_at(position: int) -> "int | None":
        return per_symbol_map.get(position % stride)

    stream: List[int] = []
    extra_positions: List[int] = []
    guard_until = -1  # steps <= guard_until must not be re-shifted
    i = 0
    n = 0
    while i < len(data):
        c0 = constraint_at(2 * n)      # y_{2n-1} in the paper's 1-based terms
        c1 = constraint_at(2 * n + 1)  # y_{2n}
        if c0 is not None and c1 is not None:
            # Twin significant bits: extra bits at positions n-1 and n-5.
            if n - 5 <= guard_until:
                raise InsertionError(
                    f"twin at step {n} overlaps a previously satisfied "
                    "constraint — Algorithm 1's precondition is violated"
                )
            if n < 6:
                raise InsertionError(
                    f"twin at step {n} < 6: the printed shifts would reach "
                    "before the stream start"
                )
            # Shift: [.., x_{n-6}, e1, old_{n-5}, old_{n-4}, old_{n-3}, e0, old_{n-2}] ...
            tmp = stream[n - 1]
            old = stream[n - 5 : n - 1]  # old x_{n-5} .. x_{n-2}
            # Solve the 2x2 system over (e0 at n-1, e1 at n-5).
            # Window after insertion: [x_n=old_{n-2}, e0, old_{n-3}, old_{n-4},
            #                          old_{n-5}, e1, x_{n-6}]
            base = {
                n: old[3],      # old x_{n-2}
                n - 1: 0,       # e0 placeholder
                n - 2: old[2],  # old x_{n-3}
                n - 3: old[1],  # old x_{n-4}
                n - 4: old[0],  # old x_{n-5}
                n - 5: 0,       # e1 placeholder
            }
            window0 = _window(stream, n, base)
            # Try the four (e0, e1) combinations; with an invertible 2x2
            # exactly one satisfies both equations.
            solved = None
            for e0 in (0, 1):
                for e1 in (0, 1):
                    base[n - 1] = e0
                    base[n - 5] = e1
                    window = _window(stream, n, base)
                    if _output(window, 0) == c0 and _output(window, 1) == c1:
                        solved = (e0, e1)
                        break
                if solved:
                    break
            del window0
            if solved is None:
                raise InsertionError(f"twin at step {n} has no solution")
            e0, e1 = solved
            # Apply the shifts of lines 18-26.
            stream.append(0)            # grow for position n
            stream.append(0)            # grow for position n+1
            stream[n] = old[3]
            stream[n - 1] = e0
            stream[n - 2] = old[2]
            stream[n - 3] = old[1]
            stream[n - 4] = old[0]
            stream[n - 5] = e1
            stream[n + 1] = tmp
            extra_positions.extend([n - 5, n - 1])
            guard_until = n + 1
            # The listing places the next data bit immediately (lines 27-28);
            # re-checking constraints first instead closes the gap where the
            # very next encoder step is itself constrained (e.g. the paper's
            # own Table II steps 86/87).
            n += 2
        elif c0 is not None or c1 is not None:
            # Single significant bit: x_n is the extra bit.
            value = c0 if c0 is not None else c1
            branch = 0 if c0 is not None else 1
            solved = None
            for etr in (0, 1):
                window = _window(stream, n, {n: etr})
                if _output(window, branch) == value:
                    solved = etr
                    break
            if solved is None:
                raise InsertionError(f"single at step {n} has no solution")
            stream_append(stream, solved)
            extra_positions.append(n)
            guard_until = max(guard_until, n)
            n += 1
        else:
            stream_append(stream, data[i])
            i += 1
            n += 1
    return np.array(stream, dtype=np.uint8), extra_positions


def stream_append(stream: List[int], value: int) -> None:
    """Append one bit, keeping the list the single source of positions."""
    stream.append(int(value))
