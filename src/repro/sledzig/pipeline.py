"""End-to-end SledZig pipeline: bytes in, waveform out, bytes back.

This is the highest-level convenience API.  The transmitter prepends a
2-octet little-endian length header to the payload (a library framing
convention — the paper leaves payload delimiting to the MAC), encodes with
SledZig, and emits a standard PPDU waveform.  The receiver runs the standard
WiFi chain, detects the protected ZigBee channel from the constellation,
strips the extra bits and returns the payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import DecodingError, ReproError
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.sledzig.decoder import ChannelDetection, SledZigDecoder
from repro.sledzig.encoder import SledZigEncodeResult, SledZigEncoder
from repro.utils.bits import bits_to_bytes, bytes_to_bits
from repro.wifi.params import Mcs, get_mcs
from repro.wifi.receiver import WifiReceiver
from repro.wifi.scrambler import DEFAULT_SEED
from repro.wifi.transmitter import WifiFrame, WifiTransmitter

#: Octets of the pipeline's length header.
LENGTH_HEADER_OCTETS: int = 2


@dataclass
class SledZigTransmission:
    """A transmitted SledZig frame.

    Attributes:
        frame: the standard PPDU (waveform, spectra, layout).
        encode_result: insertion plan and counters.
        payload: the user bytes carried.
    """

    frame: WifiFrame
    encode_result: SledZigEncodeResult
    payload: bytes

    @property
    def waveform(self) -> np.ndarray:
        """Complex baseband samples of the PPDU."""
        return self.frame.waveform

    @property
    def duration_us(self) -> float:
        """On-air duration in microseconds."""
        return self.frame.duration_us


@dataclass
class SledZigReceivedPacket:
    """A received and fully stripped SledZig frame.

    Attributes:
        payload: recovered user bytes.
        channel: ZigBee channel the frame protected.
        detection: constellation-based detection details (None if the
            receiver was pinned to a channel).
        mcs: MCS announced by the SIGNAL field.
    """

    payload: bytes
    channel: OverlapChannel
    detection: Optional[ChannelDetection]
    mcs: Mcs


class SledZigTransmitter:
    """Transmit SledZig-encoded payload bytes over the standard WiFi PHY."""

    def __init__(
        self,
        mcs: "Mcs | str",
        channel: "int | str | OverlapChannel",
        scrambler_seed: int = DEFAULT_SEED,
    ) -> None:
        self.mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
        self.channel = get_channel(channel)
        self.encoder = SledZigEncoder(self.mcs, self.channel, scrambler_seed)
        self._wifi = WifiTransmitter(self.mcs, scrambler_seed)

    def send(self, payload: bytes) -> SledZigTransmission:
        """Encode and modulate *payload*, returning the full transmission."""
        return self.send_frames([payload])[0]

    def send_frames(self, payloads: Sequence[bytes]) -> List[SledZigTransmission]:
        """Encode and modulate many payloads, batching the PHY stages.

        The scrambled-domain SledZig encoding runs per payload (the
        insertion plan is payload-dependent); payloads whose streams share
        a layout then go through the standard transmit chain as one batch
        via :meth:`repro.wifi.WifiTransmitter.transmit_scrambled_fields`.
        """
        results: List[SledZigEncodeResult] = []
        for payload in payloads:
            if len(payload) >= 1 << (8 * LENGTH_HEADER_OCTETS):
                raise DecodingError(
                    f"payload of {len(payload)} bytes exceeds the length header"
                )
            header = len(payload).to_bytes(LENGTH_HEADER_OCTETS, "little")
            data_bits = bytes_to_bits(header + bytes(payload))
            results.append(self.encoder.encode(data_bits))
        groups: Dict[Tuple[int, int], List[int]] = {}
        for idx, result in enumerate(results):
            key = (int(result.stream.size), result.signal_length_octets)
            groups.setdefault(key, []).append(idx)
        out: List[Optional[SledZigTransmission]] = [None] * len(results)
        for indices in groups.values():
            first = results[indices[0]]
            stacked = np.stack([results[i].stream for i in indices])
            frames = self._wifi.transmit_scrambled_fields(
                stacked, first.layout, first.signal_length_octets
            )
            for row, idx in enumerate(indices):
                out[idx] = SledZigTransmission(
                    frame=frames[row],
                    encode_result=results[idx],
                    payload=bytes(payloads[idx]),
                )
        return out  # type: ignore[return-value]

    def max_payload_per_frame(self) -> int:
        """Largest payload (octets) one frame can carry after overheads.

        Bounded by the 12-bit LENGTH field: the stream (data + extra bits)
        must fit 4095 octets, so the data budget shrinks by the Table IV
        loss fraction for this (MCS, channel) pair, minus the pipeline's
        length header.
        """
        from repro.sledzig.significant import extra_bits_per_symbol
        from repro.wifi.ppdu import SERVICE_BITS, TAIL_BITS

        per_symbol_capacity = self.mcs.n_dbps - extra_bits_per_symbol(
            self.mcs, self.channel
        )
        max_symbols = (4095 * 8) // self.mcs.n_dbps
        budget_bits = max_symbols * per_symbol_capacity - SERVICE_BITS - TAIL_BITS
        return budget_bits // 8 - LENGTH_HEADER_OCTETS - 1

    def send_stream(self, payload: bytes) -> "list[SledZigTransmission]":
        """Split an arbitrarily large payload across as many frames as
        needed (each independently decodable by :class:`SledZigReceiver`)."""
        chunk = min(self.max_payload_per_frame(), (1 << (8 * LENGTH_HEADER_OCTETS)) - 1)
        if chunk <= 0:
            raise DecodingError("frame too small to carry any payload")
        data = bytes(payload)
        return [self.send(data[i : i + chunk]) for i in range(0, max(len(data), 1), chunk)]


class SledZigReceiver:
    """Receive SledZig frames with automatic ZigBee-channel detection."""

    def __init__(
        self,
        channel: "int | str | OverlapChannel | None" = None,
        scrambler_seed: int = DEFAULT_SEED,
    ) -> None:
        self._wifi = WifiReceiver(scrambler_seed)
        self._decoder = SledZigDecoder(channel)

    def receive(self, waveform: np.ndarray) -> SledZigReceivedPacket:
        """Demodulate, decode, detect the channel, and strip extra bits."""
        return self.receive_frames([waveform])[0]

    def receive_frames(
        self,
        waveforms: Sequence[np.ndarray],
        on_error: str = "raise",
        data_start: Optional[int] = None,
    ) -> "List[Optional[SledZigReceivedPacket]]":
        """Decode many frames; the WiFi stage batches across frames.

        The waveform/bit-domain heavy lifting happens inside
        :meth:`repro.wifi.WifiReceiver.receive_frames`; channel detection
        and extra-bit stripping are per-frame bit operations.

        Args:
            on_error: "raise" propagates the first per-frame failure
                (scalar semantics); "none" records a ``None`` result for a
                frame that fails at any stage — WiFi decode, channel
                detection, or extra-bit stripping — and keeps decoding the
                rest (the Monte-Carlo batch-trial mode).
            data_start: SIGNAL-symbol offset when synchronisation is
                already pinned (the streaming adapters pass their window
                offset here), forwarded to the WiFi stage.
        """
        tel = telemetry.current()
        tel.count("sledzig.rx.frames", len(waveforms))
        receptions = self._wifi.receive_frames(
            waveforms, on_error=on_error, data_start=data_start
        )
        packets: "List[Optional[SledZigReceivedPacket]]" = []
        with tel.span("sledzig.rx.strip"):
            for reception in receptions:
                if reception is None:
                    # The WiFi stage already counted the typed drop cause.
                    packets.append(None)
                    continue
                try:
                    packets.append(self._strip_one(reception))
                except ReproError as exc:
                    tel.count(f"sledzig.rx.drop.{type(exc).__name__}")
                    if on_error == "raise":
                        raise
                    packets.append(None)
                except Exception:
                    # A non-ReproError strip failure is a genuine bug, never
                    # a lost frame: propagate regardless of on_error.
                    tel.count("sledzig.rx.error.unexpected")
                    raise
        tel.count("sledzig.rx.ok", sum(1 for p in packets if p is not None))
        return packets

    def _strip_one(self, reception) -> SledZigReceivedPacket:
        """Channel detection, extra-bit stripping and payload framing."""
        return strip_reception(self._decoder, reception)


def strip_reception(decoder: SledZigDecoder, reception) -> SledZigReceivedPacket:
    """Strip one WiFi reception into a SledZig packet.

    Channel detection (when *decoder* is not pinned), extra-bit stripping
    and length-header framing — the per-frame bit-domain half of
    :class:`SledZigReceiver`, shared with the streaming strip stage in
    :mod:`repro.sledzig.streaming`.
    """
    stripped = decoder.decode(reception)
    bits = stripped.data_bits
    header_bits = 8 * LENGTH_HEADER_OCTETS
    if bits.size < header_bits:
        raise DecodingError(
            "stripped stream shorter than the length header"
        )
    header = bits_to_bytes(bits[:header_bits])
    n_payload = int.from_bytes(header, "little")
    total_bits = header_bits + 8 * n_payload
    if bits.size < total_bits:
        raise DecodingError(
            f"length header promises {n_payload} bytes but only "
            f"{(bits.size - header_bits) // 8} are present"
        )
    payload = bits_to_bytes(bits[header_bits:total_bits])
    return SledZigReceivedPacket(
        payload=payload,
        channel=stripped.channel,
        detection=stripped.detection,
        mcs=reception.mcs,
    )


def encode_frames(
    payloads: Sequence[bytes],
    mcs: "Mcs | str",
    channel: "int | str | OverlapChannel",
    scrambler_seed: int = DEFAULT_SEED,
) -> List[np.ndarray]:
    """Batch-encode payload byte strings straight to PPDU waveforms.

    Thin convenience over :meth:`SledZigTransmitter.send_frames` returning
    just the complex baseband waveforms, in input order.
    """
    transmitter = SledZigTransmitter(mcs, channel, scrambler_seed)
    return [tx.waveform for tx in transmitter.send_frames(payloads)]


def decode_frames(
    waveforms: Sequence[np.ndarray],
    channel: "int | str | OverlapChannel | None" = None,
    scrambler_seed: int = DEFAULT_SEED,
) -> List[bytes]:
    """Batch-decode PPDU waveforms straight to payload bytes.

    A full-buffer adapter over the streaming core: each capture goes
    through :func:`repro.wifi.streaming.sync_capture` as one chunk, then
    the located frame windows batch-decode through
    :meth:`SledZigReceiver.receive_frames` with synchronisation pinned.
    The first frame per capture is returned, in input order; a capture
    with no decodable frame raises its typed drop cause.
    """
    from repro.errors import SynchronizationError
    from repro.wifi.streaming import sync_capture

    chosen = []
    for waveform in waveforms:
        windows, drops = sync_capture(waveform)
        if not windows:
            if drops:
                raise drops[0].error
            raise SynchronizationError("no 802.11 preamble found in capture")
        chosen.append(windows[0])
    receiver = SledZigReceiver(channel, scrambler_seed)
    groups: Dict[int, List[int]] = {}
    for idx, window in enumerate(chosen):
        groups.setdefault(window.data_start, []).append(idx)
    out: List[Optional[bytes]] = [None] * len(chosen)
    for data_start, indices in groups.items():
        packets = receiver.receive_frames(
            [chosen[i].window for i in indices], data_start=data_start
        )
        for row, idx in enumerate(indices):
            out[idx] = packets[row].payload
    return out  # type: ignore[return-value]
