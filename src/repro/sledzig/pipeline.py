"""End-to-end SledZig pipeline: bytes in, waveform out, bytes back.

This is the highest-level convenience API.  The transmitter prepends a
2-octet little-endian length header to the payload (a library framing
convention — the paper leaves payload delimiting to the MAC), encodes with
SledZig, and emits a standard PPDU waveform.  The receiver runs the standard
WiFi chain, detects the protected ZigBee channel from the constellation,
strips the extra bits and returns the payload bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import DecodingError
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.sledzig.decoder import ChannelDetection, SledZigDecoder
from repro.sledzig.encoder import SledZigEncodeResult, SledZigEncoder
from repro.utils.bits import bits_to_bytes, bytes_to_bits
from repro.wifi.params import Mcs, get_mcs
from repro.wifi.receiver import WifiReceiver
from repro.wifi.scrambler import DEFAULT_SEED
from repro.wifi.transmitter import WifiFrame, WifiTransmitter

#: Octets of the pipeline's length header.
LENGTH_HEADER_OCTETS: int = 2


@dataclass
class SledZigTransmission:
    """A transmitted SledZig frame.

    Attributes:
        frame: the standard PPDU (waveform, spectra, layout).
        encode_result: insertion plan and counters.
        payload: the user bytes carried.
    """

    frame: WifiFrame
    encode_result: SledZigEncodeResult
    payload: bytes

    @property
    def waveform(self) -> np.ndarray:
        """Complex baseband samples of the PPDU."""
        return self.frame.waveform

    @property
    def duration_us(self) -> float:
        """On-air duration in microseconds."""
        return self.frame.duration_us


@dataclass
class SledZigReceivedPacket:
    """A received and fully stripped SledZig frame.

    Attributes:
        payload: recovered user bytes.
        channel: ZigBee channel the frame protected.
        detection: constellation-based detection details (None if the
            receiver was pinned to a channel).
        mcs: MCS announced by the SIGNAL field.
    """

    payload: bytes
    channel: OverlapChannel
    detection: Optional[ChannelDetection]
    mcs: Mcs


class SledZigTransmitter:
    """Transmit SledZig-encoded payload bytes over the standard WiFi PHY."""

    def __init__(
        self,
        mcs: "Mcs | str",
        channel: "int | str | OverlapChannel",
        scrambler_seed: int = DEFAULT_SEED,
    ) -> None:
        self.mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
        self.channel = get_channel(channel)
        self.encoder = SledZigEncoder(self.mcs, self.channel, scrambler_seed)
        self._wifi = WifiTransmitter(self.mcs, scrambler_seed)

    def send(self, payload: bytes) -> SledZigTransmission:
        """Encode and modulate *payload*, returning the full transmission."""
        if len(payload) >= 1 << (8 * LENGTH_HEADER_OCTETS):
            raise DecodingError(
                f"payload of {len(payload)} bytes exceeds the length header"
            )
        header = len(payload).to_bytes(LENGTH_HEADER_OCTETS, "little")
        data_bits = bytes_to_bits(header + bytes(payload))
        result = self.encoder.encode(data_bits)
        frame = self._wifi.transmit_scrambled_field(
            result.stream, result.layout, result.signal_length_octets
        )
        return SledZigTransmission(frame=frame, encode_result=result, payload=bytes(payload))

    def max_payload_per_frame(self) -> int:
        """Largest payload (octets) one frame can carry after overheads.

        Bounded by the 12-bit LENGTH field: the stream (data + extra bits)
        must fit 4095 octets, so the data budget shrinks by the Table IV
        loss fraction for this (MCS, channel) pair, minus the pipeline's
        length header.
        """
        from repro.sledzig.significant import extra_bits_per_symbol
        from repro.wifi.ppdu import SERVICE_BITS, TAIL_BITS

        per_symbol_capacity = self.mcs.n_dbps - extra_bits_per_symbol(
            self.mcs, self.channel
        )
        max_symbols = (4095 * 8) // self.mcs.n_dbps
        budget_bits = max_symbols * per_symbol_capacity - SERVICE_BITS - TAIL_BITS
        return budget_bits // 8 - LENGTH_HEADER_OCTETS - 1

    def send_stream(self, payload: bytes) -> "list[SledZigTransmission]":
        """Split an arbitrarily large payload across as many frames as
        needed (each independently decodable by :class:`SledZigReceiver`)."""
        chunk = min(self.max_payload_per_frame(), (1 << (8 * LENGTH_HEADER_OCTETS)) - 1)
        if chunk <= 0:
            raise DecodingError("frame too small to carry any payload")
        data = bytes(payload)
        return [self.send(data[i : i + chunk]) for i in range(0, max(len(data), 1), chunk)]


class SledZigReceiver:
    """Receive SledZig frames with automatic ZigBee-channel detection."""

    def __init__(
        self,
        channel: "int | str | OverlapChannel | None" = None,
        scrambler_seed: int = DEFAULT_SEED,
    ) -> None:
        self._wifi = WifiReceiver(scrambler_seed)
        self._decoder = SledZigDecoder(channel)

    def receive(self, waveform: np.ndarray) -> SledZigReceivedPacket:
        """Demodulate, decode, detect the channel, and strip extra bits."""
        reception = self._wifi.receive(waveform)
        stripped = self._decoder.decode(reception)
        bits = stripped.data_bits
        header_bits = 8 * LENGTH_HEADER_OCTETS
        if bits.size < header_bits:
            raise DecodingError("stripped stream shorter than the length header")
        header = bits_to_bytes(bits[:header_bits])
        n_payload = int.from_bytes(header, "little")
        total_bits = header_bits + 8 * n_payload
        if bits.size < total_bits:
            raise DecodingError(
                f"length header promises {n_payload} bytes but only "
                f"{(bits.size - header_bits) // 8} are present"
            )
        payload = bits_to_bytes(bits[header_bits:total_bits])
        return SledZigReceivedPacket(
            payload=payload,
            channel=stripped.channel,
            detection=stripped.detection,
            mcs=reception.mcs,
        )
