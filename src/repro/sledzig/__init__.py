"""SledZig core: subcarrier-level energy decreasing via payload encoding."""

from repro.sledzig.analysis import (
    ExtraBitsRow,
    ThroughputLossRow,
    expected_band_decrease_db,
    extra_bits_table,
    rssi_offset_db,
    summary,
    theoretical_power_decrease_db,
    throughput_loss,
    throughput_loss_table,
)
from repro.sledzig.channels import (
    CHANNEL_ALIASES,
    OVERLAP_SPAN,
    PAPER_WIFI_CHANNEL,
    PAPER_ZIGBEE_CHANNELS,
    ZIGBEE_BANDWIDTH_HZ,
    OverlapChannel,
    all_channels,
    get_channel,
    overlap_channel,
    wifi_center_frequency_mhz,
    zigbee_center_frequency_mhz,
)
from repro.sledzig.adaptive import (
    AdaptiveSledZigController,
    EnergySnapshot,
    ZigbeeChannelEstimator,
    detect_zigbee_activity,
)
from repro.sledzig.decoder import (
    ChannelDetection,
    SledZigDecodeResult,
    SledZigDecoder,
    detect_zigbee_channel,
)
from repro.sledzig.encoder import SledZigEncodeResult, SledZigEncoder
from repro.sledzig.insertion import (
    Cluster,
    Constraint,
    InsertionPlan,
    build_stream,
    plan_insertion,
    verify_stream,
)
from repro.sledzig.pipeline import (
    LENGTH_HEADER_OCTETS,
    SledZigReceivedPacket,
    SledZigReceiver,
    SledZigTransmission,
    SledZigTransmitter,
    decode_frames,
    encode_frames,
)
from repro.sledzig.streaming import (
    OnlineChannelDetector,
    SledZigStreamReceiver,
    SledZigStripStage,
)
from repro.sledzig.significant import (
    SignificantBit,
    constraint_map_for_symbols,
    extra_bits_per_symbol,
    significant_bits_for_symbol,
    significant_positions_paper,
)

__all__ = [name for name in dir() if not name.startswith("_")]
