"""Extra-bit insertion: the generalised solver behind SledZig encoding.

The paper's Algorithm 1 handles two cases — *single* significant bits (one
extra bit at the current encoder step) and *twin* significant bits (two
extra bits at steps n-1 and n-5) — and relies on deinterleaving having
scattered significant bits so far apart that twins never interact with other
constraints.  That claim holds for the paper's bit-labelling; under the
802.11 standard labelling used by this library a few configurations
(e.g. QAM-256 rate 5/6) produce constraints at adjacent encoder steps.

This module therefore implements a strictly more general, provably
deterministic scheme:

1. Constrained encoder steps are grouped into *clusters* — runs of steps
   whose 7-bit encoder windows overlap (gap <= 6).
2. Each cluster with C constraints reserves C *extra-bit positions* inside
   the union of its windows, chosen (data-independently) so that the C x C
   GF(2) coefficient matrix of the constraints w.r.t. the reserved unknowns
   is full rank.  For an isolated single this degenerates to the paper's
   "insert x_n"; for an isolated twin to a two-position insertion.
3. While the transmit stream is built left to right, reserved positions are
   skipped; when the sweep passes a cluster's last step the cluster's
   constraints are solved jointly by Gaussian elimination over GF(2).

Because the coefficient matrix depends only on the generator polynomials
and the reserved-position offsets — never on payload data — feasibility is
established once at planning time: encoding can then never fail at runtime.
The number of extra bits still equals the number of significant bits, so
the paper's Table III/IV accounting is unchanged.

The rank checks and per-cluster solves run on :func:`repro.utils.galois`
wrappers that dispatch through the :mod:`repro.kernels` registry — the
packed-uint64 ``optimized`` backend eliminates whole rows per XOR, which
is what makes dense-cluster planning (QAM-256 rate 5/6, wideband HT40)
cheap; conformance against the dense reference is enforced by
``tests/kernels/``.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import InsertionError
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.sledzig.significant import significant_bits_for_symbol
from repro.utils.galois import gf2_rank, gf2_solve
from repro.wifi.convolutional import CONSTRAINT_LENGTH, G0_TAPS, G1_TAPS
from repro.wifi.params import Mcs, get_mcs

#: Tap value of generator *branch* at lag *l* (coefficient of x_{n-l}).
_TAPS = (G0_TAPS, G1_TAPS)


@dataclass(frozen=True)
class Constraint:
    """One required mother-code output bit.

    Attributes:
        step: 0-based encoder step n (output pair index).
        branch: 0 for the g0 output, 1 for the g1 output.
        value: required bit value.
    """

    step: int
    branch: int
    value: int


@dataclass(frozen=True)
class Cluster:
    """A maximal run of constraints with overlapping encoder windows.

    Attributes:
        constraints: the member constraints, ordered by (step, branch).
        reserved: stream positions reserved for extra bits, ascending.
    """

    constraints: Tuple[Constraint, ...]
    reserved: Tuple[int, ...]

    @property
    def first_step(self) -> int:
        """Earliest constrained encoder step."""
        return self.constraints[0].step

    @property
    def last_step(self) -> int:
        """Latest constrained encoder step (cluster solve trigger)."""
        return self.constraints[-1].step


@dataclass(frozen=True)
class InsertionPlan:
    """Deterministic description of where extra bits go in a frame.

    Attributes:
        mcs_name: MCS the plan was built for.
        channel_index: CH1..CH4 index.
        n_symbols: OFDM symbols covered.
        clusters: solved reservation clusters, in stream order.
        extra_positions: all reserved positions, ascending.
    """

    mcs_name: str
    channel_index: int
    n_symbols: int
    clusters: Tuple[Cluster, ...]
    extra_positions: Tuple[int, ...]

    @property
    def n_extra(self) -> int:
        """Total extra bits inserted over the frame."""
        return len(self.extra_positions)

    @property
    def n_stream_bits(self) -> int:
        """Total scrambled-stream bits of the frame."""
        return get_mcs(self.mcs_name).n_dbps * self.n_symbols

    @property
    def payload_capacity(self) -> int:
        """Stream bits available for SERVICE/PSDU/tail/pad."""
        return self.n_stream_bits - self.n_extra


def _coefficient(constraint: Constraint, position: int) -> int:
    """GF(2) coefficient of stream bit *position* in *constraint*'s equation."""
    lag = constraint.step - position
    if not 0 <= lag < CONSTRAINT_LENGTH:
        return 0
    return int(_TAPS[constraint.branch][lag])


def _cluster_constraints(
    constraints: Sequence[Constraint], gap: int = CONSTRAINT_LENGTH - 1
) -> List[List[Constraint]]:
    """Split sorted constraints into clusters of window-overlapping steps."""
    clusters: List[List[Constraint]] = []
    for constraint in sorted(constraints, key=lambda c: (c.step, c.branch)):
        if clusters and constraint.step - clusters[-1][-1].step <= gap:
            clusters[-1].append(constraint)
        else:
            clusters.append([constraint])
    return clusters


def _reserve_positions(members: Sequence[Constraint]) -> Tuple[int, ...]:
    """Choose full-rank extra-bit positions for one cluster.

    Candidates are the union of the member windows, capped below at 0.
    The search prefers positions at the constrained steps themselves (the
    paper's choice for singles), widening combinatorially only for the rare
    clusters where that fails.  Raises :class:`InsertionError` if no
    full-rank reservation exists (never observed for valid configurations;
    the check makes failure loud rather than silent).
    """
    n_unknowns = len(members)
    low = max(0, members[0].step - (CONSTRAINT_LENGTH - 1))
    high = members[-1].step
    candidates = list(range(high, low - 1, -1))  # prefer late positions

    def rank_of(subset: Sequence[int]) -> int:
        matrix = [
            [_coefficient(c, p) for p in subset] for c in members
        ]
        return gf2_rank(matrix)

    # Fast path: the constrained steps themselves plus immediate neighbours.
    preferred = sorted({c.step for c in members}, reverse=True)
    if len(preferred) >= n_unknowns and rank_of(preferred[:n_unknowns]) == n_unknowns:
        return tuple(sorted(preferred[:n_unknowns]))
    for subset in itertools.combinations(candidates, n_unknowns):
        if rank_of(subset) == n_unknowns:
            return tuple(sorted(subset))
    raise InsertionError(
        f"no full-rank extra-bit reservation for cluster at steps "
        f"{[c.step for c in members]}"
    )


def plan_from_constraints(
    constraints: Sequence[Constraint],
) -> "tuple[Tuple[Cluster, ...], Tuple[int, ...]]":
    """Cluster arbitrary constraints and reserve full-rank extra positions.

    The generic core of planning, shared by the 20 MHz path and the 40 MHz
    extension (:mod:`repro.sledzig.wideband`): geometry-independent, it only
    sees encoder steps and generator branches.
    """
    clusters: List[Cluster] = []
    positions: List[int] = []
    for members in _cluster_constraints(constraints):
        reserved = _reserve_positions(members)
        clusters.append(Cluster(tuple(members), reserved))
        positions.extend(reserved)
    positions.sort()
    if len(positions) != len(set(positions)):
        raise InsertionError("overlapping extra-bit reservations across clusters")
    return tuple(clusters), tuple(positions)


def solve_constraints(stream: np.ndarray, clusters: Sequence[Cluster]) -> None:
    """Solve every cluster in stream order, writing extra bits in place."""
    for cluster in clusters:
        _solve_cluster(stream, cluster)


@lru_cache(maxsize=None)
def _plan_cached(
    mcs_name: str, channel: OverlapChannel, n_symbols: int
) -> InsertionPlan:
    mcs = get_mcs(mcs_name)
    per_symbol = significant_bits_for_symbol(mcs, channel)
    constraints: List[Constraint] = []
    for s in range(n_symbols):
        base = s * mcs.n_dbps
        for bit in per_symbol:
            constraints.append(
                Constraint(
                    step=base + bit.encoder_step,
                    branch=bit.branch,
                    value=bit.value,
                )
            )
    clusters, positions = plan_from_constraints(constraints)
    return InsertionPlan(
        mcs_name=mcs_name,
        channel_index=channel.index,
        n_symbols=n_symbols,
        clusters=clusters,
        extra_positions=positions,
    )


def plan_insertion(
    mcs: "Mcs | str",
    channel: "int | str | OverlapChannel",
    n_symbols: int,
) -> InsertionPlan:
    """Build (or fetch) the deterministic insertion plan for a frame size."""
    mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
    ch = get_channel(channel)
    if n_symbols < 1:
        raise InsertionError("a frame needs at least one OFDM symbol")
    return _plan_cached(mcs.name, ch, n_symbols)


def build_stream(plan: InsertionPlan, payload_scrambled: Sequence[int]) -> np.ndarray:
    """Assemble the scrambled-domain transmit stream from a plan.

    Args:
        plan: the insertion plan for the frame.
        payload_scrambled: the scrambled-domain values of every non-extra
            stream bit, in order (SERVICE + PSDU + tail + pad, already
            scrambled and tail-zeroed).  Must exactly fill
            ``plan.payload_capacity`` bits.

    Returns the complete stream with extra bits solved so that running the
    standard convolutional encoder over it meets every constraint.
    """
    payload = np.asarray(payload_scrambled, dtype=np.uint8).ravel()
    if payload.size != plan.payload_capacity:
        raise InsertionError(
            f"payload of {payload.size} bits does not fill the plan's "
            f"capacity of {plan.payload_capacity}"
        )
    n = plan.n_stream_bits
    stream = np.zeros(n, dtype=np.uint8)
    is_extra = np.zeros(n, dtype=bool)
    is_extra[list(plan.extra_positions)] = True
    stream[~is_extra] = payload

    for cluster in plan.clusters:
        _solve_cluster(stream, cluster)
    return stream


def _solve_cluster(stream: np.ndarray, cluster: Cluster) -> None:
    """Solve one cluster's constraints in place."""
    unknowns = list(cluster.reserved)
    matrix: List[List[int]] = []
    rhs: List[int] = []
    for constraint in cluster.constraints:
        row = [_coefficient(constraint, p) for p in unknowns]
        acc = constraint.value
        low = max(0, constraint.step - (CONSTRAINT_LENGTH - 1))
        for position in range(low, constraint.step + 1):
            if position in cluster.reserved:
                continue
            coeff = _coefficient(constraint, position)
            if coeff:
                acc ^= int(stream[position]) & coeff
        matrix.append(row)
        rhs.append(acc)
    solution, _ = gf2_solve(matrix, rhs)
    for position, value in zip(unknowns, solution):
        stream[position] = value


def verify_stream(
    stream: Sequence[int],
    mcs: "Mcs | str",
    channel: "int | str | OverlapChannel",
) -> List[Constraint]:
    """Re-encode *stream* with the standard coder and list violated constraints.

    An empty list means every significant bit holds — the invariant the
    SledZig encoder asserts before emitting a waveform.
    """
    from repro.wifi.convolutional import conv_encode  # local to avoid cycle

    mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
    arr = np.asarray(stream, dtype=np.uint8).ravel()
    if arr.size % mcs.n_dbps:
        raise InsertionError(
            f"stream of {arr.size} bits is not whole symbols of {mcs.n_dbps}"
        )
    n_symbols = arr.size // mcs.n_dbps
    mother = conv_encode(arr)
    per_symbol = significant_bits_for_symbol(mcs, channel)
    violated: List[Constraint] = []
    for s in range(n_symbols):
        base = 2 * s * mcs.n_dbps
        for bit in per_symbol:
            if int(mother[base + bit.position]) != bit.value:
                violated.append(
                    Constraint(
                        step=s * mcs.n_dbps + bit.encoder_step,
                        branch=bit.branch,
                        value=bit.value,
                    )
                )
    return violated
