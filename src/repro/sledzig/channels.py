"""ZigBee-channel <-> WiFi-subcarrier overlap geometry (paper Sections II-B, IV-B).

A 20 MHz WiFi channel overlaps four 2 MHz ZigBee channels.  The paper's
testbed puts WiFi on channel 13 (2472 MHz) and ZigBee on channels 23-26
(2465/2470/2475/2480 MHz), called CH1..CH4; every WiFi channel overlaps four
ZigBee channels in this same pattern, so CH1..CH4 generalise.

In subcarrier units (312.5 kHz) the four ZigBee centres sit at offsets
-22.4, -6.4, +9.6 and +25.6 from the WiFi centre.  A 2 MHz ZigBee channel
covers 6.4 subcarriers; because OFDM subcarriers leak into their neighbours
(paper Fig. 7), SledZig silences *eight* subcarriers per channel — the six
fully-overlapped ones plus one on each side.  For CH1-CH3 one of the eight
is a pilot (which SledZig cannot touch); for CH4 three are beyond +26 and
therefore already null.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, replace
from functools import lru_cache
from typing import Dict, Tuple

from repro.errors import ConfigurationError
from repro.utils.validation import require, require_in
from repro.wifi.params import (
    DATA_SUBCARRIERS,
    PILOT_SUBCARRIERS,
    SUBCARRIER_SPACING_HZ,
)

#: ZigBee channel bandwidth in Hz.
ZIGBEE_BANDWIDTH_HZ: float = 2e6

#: ZigBee channel numbers overlapping one WiFi channel, in CH1..CH4 order.
PAPER_ZIGBEE_CHANNELS: Tuple[int, ...] = (23, 24, 25, 26)

#: The paper's WiFi channel number.
PAPER_WIFI_CHANNEL: int = 13

#: Short names used throughout the paper.
CHANNEL_ALIASES: Dict[str, int] = {"CH1": 1, "CH2": 2, "CH3": 3, "CH4": 4}

#: Number of subcarriers SledZig silences per ZigBee channel (Section IV-B).
OVERLAP_SPAN: int = 8

#: Logical subcarrier indices of the 64-bin OFDM grid (-32..31); a span
#: reaching past these would silently classify physical bins that do not
#: exist as "already null".
_FFT_SUBCARRIER_MIN: int = -32
_FFT_SUBCARRIER_MAX: int = 31


def _as_channel_int(value: object, what: str) -> int:
    """*value* as a plain int, or a typed error.

    Accepts anything integral (python ints, numpy integer scalars) and
    rejects floats, bools and strings — ``int(2.5)`` silently truncating
    to CH2 was exactly the class of silent-wrong-span bug this guards.
    """
    if isinstance(value, bool):
        raise ConfigurationError(f"{what} must be an integer, got {value!r}")
    try:
        return operator.index(value)  # type: ignore[arg-type]
    except TypeError:
        raise ConfigurationError(
            f"{what} must be an integer, got {value!r} ({type(value).__name__})"
        ) from None


def wifi_center_frequency_mhz(channel: int) -> float:
    """Centre frequency of a 2.4 GHz WiFi channel (1..13)."""
    require(1 <= channel <= 13, f"WiFi channel must be 1..13, got {channel}")
    return 2407.0 + 5.0 * channel


def zigbee_center_frequency_mhz(channel: int) -> float:
    """Centre frequency of a 2.4 GHz ZigBee channel (11..26)."""
    require(11 <= channel <= 26, f"ZigBee channel must be 11..26, got {channel}")
    return 2405.0 + 5.0 * (channel - 11)


@dataclass(frozen=True)
class OverlapChannel:
    """The overlap of one ZigBee channel with one WiFi channel.

    Attributes:
        index: paper name index 1..4 (CH1..CH4).
        zigbee_channel: 802.15.4 channel number (11..26).
        wifi_channel: 802.11 channel number.
        center_offset_hz: ZigBee centre relative to the WiFi centre.
        subcarriers: the eight logical subcarrier indices SledZig silences.
        data_subcarriers: the silenceable (data) subset.
        pilot_subcarriers: pilots inside the span (cannot be silenced).
        null_subcarriers: indices beyond the used band (already silent).
    """

    index: int
    zigbee_channel: int
    wifi_channel: int
    center_offset_hz: float
    subcarriers: Tuple[int, ...]
    data_subcarriers: Tuple[int, ...]
    pilot_subcarriers: Tuple[int, ...]
    null_subcarriers: Tuple[int, ...]

    @property
    def name(self) -> str:
        """Paper-style name (CH1..CH4)."""
        return f"CH{self.index}"

    @property
    def n_data_subcarriers(self) -> int:
        """How many data subcarriers SledZig controls in this channel."""
        return len(self.data_subcarriers)

    @property
    def has_pilot(self) -> bool:
        """True for CH1-CH3, whose span contains one pilot subcarrier."""
        return bool(self.pilot_subcarriers)


def _span_around(center_subcarriers: float, span: int) -> Tuple[int, ...]:
    """The *span* consecutive subcarrier indices centred on a ZigBee channel.

    The 2 MHz channel covers 6.4 subcarriers; with span = 8 we take the six
    fully-overlapped subcarriers plus one on each side.  The span is the
    range of integers nearest the centre.
    """
    first = int(round(center_subcarriers - span / 2.0 + 0.5))
    return tuple(range(first, first + span))


@lru_cache(maxsize=None)
def overlap_channel(
    index_or_zigbee: int,
    wifi_channel: int = PAPER_WIFI_CHANNEL,
    span: int = OVERLAP_SPAN,
) -> OverlapChannel:
    """Build the overlap description for one ZigBee channel.

    Args:
        index_or_zigbee: either a paper index 1..4 or a ZigBee channel
            number 11..26 (must overlap the WiFi channel).
        wifi_channel: 802.11 channel (default: the paper's channel 13).
        span: number of subcarriers to silence (default 8; the Fig. 11
            experiment sweeps this).

    Raises:
        ConfigurationError: on non-integral arguments, a channel outside
            1..4 / 11..26, a WiFi channel outside 1..13, a non-positive
            span, or a span that reaches past the 64-bin OFDM grid.
    """
    index_or_zigbee = _as_channel_int(index_or_zigbee, "channel")
    wifi_channel = _as_channel_int(wifi_channel, "WiFi channel")
    span = _as_channel_int(span, "span")
    require(
        1 <= wifi_channel <= 13,
        f"WiFi channel must be 1..13, got {wifi_channel}",
    )
    require(span >= 1, f"span must be a positive subcarrier count, got {span}")
    if not (1 <= index_or_zigbee <= 4 or 11 <= index_or_zigbee <= 26):
        raise ConfigurationError(
            f"channel must be a paper index 1..4 or a ZigBee channel 11..26, "
            f"got {index_or_zigbee}"
        )
    if 1 <= index_or_zigbee <= 4:
        zigbee = _overlapping_zigbee_channels(wifi_channel)[index_or_zigbee - 1]
        index = index_or_zigbee
    else:
        zigbee = index_or_zigbee
        channels = _overlapping_zigbee_channels(wifi_channel)
        if zigbee not in channels:
            raise ConfigurationError(
                f"ZigBee channel {zigbee} does not overlap WiFi channel "
                f"{wifi_channel} (overlapping: {channels})"
            )
        index = channels.index(zigbee) + 1

    offset_hz = (
        zigbee_center_frequency_mhz(zigbee) - wifi_center_frequency_mhz(wifi_channel)
    ) * 1e6
    center_sc = offset_hz / SUBCARRIER_SPACING_HZ
    span_indices = _span_around(center_sc, span)
    if span_indices[0] < _FFT_SUBCARRIER_MIN or span_indices[-1] > _FFT_SUBCARRIER_MAX:
        raise ConfigurationError(
            f"span {span} around ZigBee channel {zigbee} covers subcarriers "
            f"{span_indices[0]}..{span_indices[-1]}, outside the 64-bin OFDM "
            f"grid ({_FFT_SUBCARRIER_MIN}..{_FFT_SUBCARRIER_MAX})"
        )
    data = tuple(k for k in span_indices if k in DATA_SUBCARRIERS)
    pilots = tuple(k for k in span_indices if k in PILOT_SUBCARRIERS)
    nulls = tuple(
        k for k in span_indices if k not in DATA_SUBCARRIERS and k not in PILOT_SUBCARRIERS
    )
    return OverlapChannel(
        index=index,
        zigbee_channel=zigbee,
        wifi_channel=wifi_channel,
        center_offset_hz=offset_hz,
        subcarriers=span_indices,
        data_subcarriers=data,
        pilot_subcarriers=pilots,
        null_subcarriers=nulls,
    )


def _overlapping_zigbee_channels(wifi_channel: int) -> Tuple[int, ...]:
    """The four ZigBee channels overlapping a WiFi channel, CH1..CH4 order."""
    wifi_mhz = wifi_center_frequency_mhz(wifi_channel)
    channels = tuple(
        ch
        for ch in range(11, 27)
        if abs(zigbee_center_frequency_mhz(ch) - wifi_mhz) * 1e6
        < 10e6 + ZIGBEE_BANDWIDTH_HZ / 2.0
    )
    if len(channels) != 4:
        raise ConfigurationError(
            f"WiFi channel {wifi_channel} overlaps {len(channels)} ZigBee "
            f"channels; expected 4"
        )
    return channels


def get_channel(channel: "int | str | OverlapChannel") -> OverlapChannel:
    """Normalise a channel argument: CH-name, paper index, ZigBee number or
    an existing :class:`OverlapChannel`.

    Raises:
        ConfigurationError: on an unknown name, an out-of-range number, or
            a non-integral numeric (``2.5`` used to truncate to CH2 and
            build a silently wrong span).
    """
    if isinstance(channel, OverlapChannel):
        return channel
    if isinstance(channel, str):
        require_in(channel.upper(), CHANNEL_ALIASES, "channel name")
        return overlap_channel(CHANNEL_ALIASES[channel.upper()])
    return overlap_channel(_as_channel_int(channel, "channel"))


def all_channels(wifi_channel: int = PAPER_WIFI_CHANNEL) -> Tuple[OverlapChannel, ...]:
    """CH1..CH4 for one WiFi channel."""
    return tuple(overlap_channel(i, wifi_channel) for i in range(1, 5))


def channel_with_n_data(
    base: "OverlapChannel | str | int", n_data: int
) -> OverlapChannel:
    """A variant of *base* silencing only the *n_data* data subcarriers
    nearest the ZigBee channel centre.

    The Fig. 11 experiment sweeps this to show where silencing saturates;
    the CTC side channel (:mod:`repro.sledzig.ctc`) uses the same ranking
    to build its power-pattern symbol alphabet.  The returned channel keeps
    the full span/pilot/null description of *base* — only which data
    subcarriers SledZig actually constrains changes.
    """
    ch = get_channel(base)
    n_data = _as_channel_int(n_data, "n_data")
    center_sc = ch.center_offset_hz / SUBCARRIER_SPACING_HZ
    ranked = sorted(DATA_SUBCARRIERS, key=lambda k: abs(k - center_sc))
    require(
        0 <= n_data <= len(ranked),
        f"n_data must be 0..{len(ranked)}, got {n_data}",
    )
    chosen = tuple(sorted(ranked[:n_data]))
    return replace(ch, data_subcarriers=chosen)
