"""SledZig over a 40 MHz (HT40) WiFi channel — the paper's footnote-1 extension.

A 40 MHz channel overlaps *eight* 2 MHz ZigBee channels.  This module
recomputes the whole SledZig analysis for that geometry:

* per-ZigBee-channel overlap spans (eight subcarriers each, as in the
  20 MHz analysis, because the subcarrier spacing is unchanged);
* significant bits walked back through the HT40 interleaver and the same
  puncturer;
* extra-bit counts, throughput loss and expected in-band decreases;
* full constraint planning/solving with the generic cluster solver and a
  stream-level verification against the (unchanged) convolutional encoder.

No waveform path is built for HT40 — the claim being verified is the
*encoding* claim: for every (MCS, overlapped channel) pair the extra-bit
insertion remains solvable and the overheads stay in the single-digit to
low-teens percent range.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, InsertionError
from repro.sledzig.channels import zigbee_center_frequency_mhz
from repro.sledzig.insertion import (
    Constraint,
    plan_from_constraints,
    solve_constraints,
)
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.constellation import significant_bit_pattern
from repro.wifi.convolutional import conv_encode
from repro.wifi.ht40 import (
    DATA_SUBCARRIERS,
    PILOT_SUBCARRIERS,
    SUBCARRIER_SPACING_HZ,
    Ht40Mcs,
    data_subcarrier_index,
    get_ht40_mcs,
    ht40_deinterleave_permutation,
)
from repro.wifi.params import average_constellation_power
from repro.wifi.puncture import kept_indices

#: Subcarriers silenced per ZigBee channel (same rationale as 20 MHz).
OVERLAP_SPAN: int = 8


@dataclass(frozen=True)
class WideOverlapChannel:
    """One ZigBee channel inside a 40 MHz WiFi channel.

    Attributes:
        position: 1..8 ordering across the wide channel.
        zigbee_channel: 802.15.4 channel number.
        center_offset_hz: offset of the ZigBee centre from the WiFi centre.
        subcarriers: the silenced span.
        data_subcarriers: silenceable members of the span.
        pilot_subcarriers: pilots inside the span.
        null_subcarriers: span members outside the used band.
    """

    position: int
    zigbee_channel: int
    center_offset_hz: float
    subcarriers: Tuple[int, ...]
    data_subcarriers: Tuple[int, ...]
    pilot_subcarriers: Tuple[int, ...]
    null_subcarriers: Tuple[int, ...]

    @property
    def name(self) -> str:
        """W1..W8 naming for the eight overlapped channels."""
        return f"W{self.position}"


def wide_wifi_center_mhz(primary_channel: int = 13) -> float:
    """Centre of a 40 MHz channel built below the given primary (HT40-)."""
    from repro.sledzig.channels import wifi_center_frequency_mhz

    return wifi_center_frequency_mhz(primary_channel) - 10.0


@lru_cache(maxsize=None)
def wide_overlap_channels(center_mhz: float = 2462.0) -> Tuple[WideOverlapChannel, ...]:
    """All ZigBee channels overlapping a 40 MHz channel at *center_mhz*."""
    out: List[WideOverlapChannel] = []
    position = 0
    for zigbee in range(11, 27):
        offset_hz = (zigbee_center_frequency_mhz(zigbee) - center_mhz) * 1e6
        if abs(offset_hz) >= 20e6 + 1e6:
            continue
        center_sc = offset_hz / SUBCARRIER_SPACING_HZ
        first = int(round(center_sc - OVERLAP_SPAN / 2.0 + 0.5))
        span = tuple(range(first, first + OVERLAP_SPAN))
        data = tuple(k for k in span if k in DATA_SUBCARRIERS)
        pilots = tuple(k for k in span if k in PILOT_SUBCARRIERS)
        nulls = tuple(
            k for k in span if k not in DATA_SUBCARRIERS and k not in PILOT_SUBCARRIERS
        )
        position += 1
        out.append(
            WideOverlapChannel(
                position=position,
                zigbee_channel=zigbee,
                center_offset_hz=offset_hz,
                subcarriers=span,
                data_subcarriers=data,
                pilot_subcarriers=pilots,
                null_subcarriers=nulls,
            )
        )
    if len(out) != 8:
        raise ConfigurationError(
            f"a 40 MHz channel should overlap 8 ZigBee channels, found {len(out)}"
        )
    return tuple(out)


@lru_cache(maxsize=None)
def wide_significant_positions(
    mcs_name: str, zigbee_channel: int, center_mhz: float = 2462.0
) -> Tuple[Tuple[int, int], ...]:
    """(mother-code position, value) pairs for one HT40 OFDM symbol."""
    mcs = get_ht40_mcs(mcs_name)
    channel = _channel_by_zigbee(zigbee_channel, center_mhz)
    pattern = significant_bit_pattern(mcs.modulation)
    inverse = ht40_deinterleave_permutation(mcs.n_cbps, mcs.n_bpsc)
    kept = kept_indices(2 * mcs.n_dbps, mcs.coding_rate)
    pairs: List[Tuple[int, int]] = []
    for logical in channel.data_subcarriers:
        d = data_subcarrier_index(logical)
        for offset, value in pattern.items():
            post_puncture = inverse[d * mcs.n_bpsc + offset]
            pairs.append((int(kept[post_puncture]), int(value)))
    pairs.sort()
    positions = [p for p, _ in pairs]
    if len(set(positions)) != len(positions):
        raise ConfigurationError("duplicate significant positions in HT40 chain")
    return tuple(pairs)


def _channel_by_zigbee(zigbee_channel: int, center_mhz: float) -> WideOverlapChannel:
    for channel in wide_overlap_channels(center_mhz):
        if channel.zigbee_channel == zigbee_channel:
            return channel
    raise ConfigurationError(
        f"ZigBee channel {zigbee_channel} does not overlap the 40 MHz "
        f"channel at {center_mhz} MHz"
    )


def wide_extra_bits_per_symbol(
    mcs_name: str, zigbee_channel: int, center_mhz: float = 2462.0
) -> int:
    """Extra bits per HT40 symbol for one protected ZigBee channel."""
    return len(wide_significant_positions(mcs_name, zigbee_channel, center_mhz))


def wide_throughput_loss(
    mcs_name: str, zigbee_channel: int, center_mhz: float = 2462.0
) -> float:
    """Fractional HT40 throughput loss (extra bits / N_DBPS)."""
    mcs = get_ht40_mcs(mcs_name)
    return wide_extra_bits_per_symbol(mcs_name, zigbee_channel, center_mhz) / mcs.n_dbps


def wide_expected_decrease_db(
    mcs_name: str, zigbee_channel: int, center_mhz: float = 2462.0
) -> float:
    """First-order in-band decrease, with pilot dilution where applicable."""
    mcs = get_ht40_mcs(mcs_name)
    channel = _channel_by_zigbee(zigbee_channel, center_mhz)
    ratio = 2.0 / average_constellation_power(mcs.modulation)
    n_data = len(channel.data_subcarriers)
    n_pilot = len(channel.pilot_subcarriers)
    normal = n_data + n_pilot
    sled = n_data * ratio + n_pilot
    if sled <= 0:
        return float("inf")
    return float(10.0 * np.log10(normal / sled))


def build_wide_stream(
    mcs_name: str,
    zigbee_channel: int,
    payload_scrambled: BitsLike,
    n_symbols: int,
    center_mhz: float = 2462.0,
) -> "tuple[np.ndarray, Tuple[int, ...]]":
    """Build and verify an HT40 SledZig stream (scrambled domain).

    Returns ``(stream, extra_positions)``; raises :class:`InsertionError`
    if any significant bit ends up violated (it never does — the generic
    cluster solver's feasibility argument is geometry-independent).
    """
    mcs = get_ht40_mcs(mcs_name)
    per_symbol = wide_significant_positions(mcs_name, zigbee_channel, center_mhz)
    constraints: List[Constraint] = []
    for s in range(n_symbols):
        base = s * mcs.n_dbps
        for position, value in per_symbol:
            constraints.append(
                Constraint(step=base + position // 2, branch=position % 2, value=value)
            )
    clusters, extra_positions = plan_from_constraints(constraints)

    payload = as_bits(payload_scrambled)
    n_bits = n_symbols * mcs.n_dbps
    capacity = n_bits - len(extra_positions)
    if payload.size != capacity:
        raise InsertionError(
            f"payload of {payload.size} bits does not fill capacity {capacity}"
        )
    stream = np.zeros(n_bits, dtype=np.uint8)
    is_extra = np.zeros(n_bits, dtype=bool)
    is_extra[list(extra_positions)] = True
    stream[~is_extra] = payload
    solve_constraints(stream, clusters)

    mother = conv_encode(stream)
    stride = 2 * mcs.n_dbps
    for s in range(n_symbols):
        for position, value in per_symbol:
            if int(mother[s * stride + position]) != value:
                raise InsertionError(
                    f"HT40 constraint violated at symbol {s}, position {position}"
                )
    return stream, extra_positions
