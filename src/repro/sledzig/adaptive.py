"""Adaptive SledZig: identify the ZigBee channel, then protect it.

The paper (Section VI-A) notes that signal-identification mechanisms
"can work with SledZig to make it more flexible to use, as the WiFi devices
can decrease signal power adaptively according to the identified ZigBee
channel".  This module implements that composition:

* :func:`detect_zigbee_activity` — locate a 2 MHz ZigBee-shaped occupant
  inside the 20 MHz WiFi channel from raw IQ samples (band energy against
  an out-of-band noise reference);
* :class:`ZigbeeChannelEstimator` — fuse a stream of per-channel energy
  snapshots (what a WiFi radio can sample between its own transmissions)
  into a channel estimate;
* :class:`AdaptiveSledZigController` — hysteresis-guarded policy that turns
  protection on/off and selects the channel, so a WiFi transmitter only
  pays the Table IV overhead while a ZigBee neighbour is actually active.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sledzig.channels import OverlapChannel, all_channels
from repro.utils.db import linear_to_db
from repro.wifi.params import SAMPLE_RATE_HZ
from repro.wifi.spectral import band_power


def detect_zigbee_activity(
    waveform: np.ndarray,
    margin_db: float = 6.0,
    sample_rate_hz: float = SAMPLE_RATE_HZ,
) -> Optional[OverlapChannel]:
    """Find a ZigBee occupant in an idle-channel IQ capture.

    Compares the power in each overlap channel's 2 MHz band against the
    quietest band (the noise reference); declares the loudest band occupied
    when it exceeds the reference by *margin_db*.

    Returns the detected channel or None when the spectrum looks flat.
    """
    arr = np.asarray(waveform, dtype=np.complex128).ravel()
    if arr.size < 256:
        raise ConfigurationError("capture too short for band analysis")
    levels = [
        band_power(arr, ch.center_offset_hz, 2e6, sample_rate_hz=sample_rate_hz)
        for ch in all_channels()
    ]
    quiet = min(levels)
    loud = max(levels)
    if quiet <= 0:
        quiet = 1e-15
    if linear_to_db(loud / quiet) < margin_db:
        return None
    return all_channels()[int(np.argmax(levels))]


@dataclass(frozen=True)
class EnergySnapshot:
    """One spectrum sample a WiFi device took while idle.

    Attributes:
        time_us: capture time.
        levels_db: reported power per overlap channel, CH1..CH4 order.
    """

    time_us: float
    levels_db: Sequence[float]

    def __post_init__(self) -> None:
        if len(self.levels_db) != 4:
            raise ConfigurationError("snapshot needs one level per channel")


class ZigbeeChannelEstimator:
    """Fuses energy snapshots into a ZigBee-channel estimate.

    A channel counts as *active* in a snapshot when it reads more than
    ``margin_db`` above the noise floor; the estimate is the channel active
    in the largest fraction of the window, provided that fraction clears
    ``min_activity`` (ZigBee traffic is bursty — demanding constant energy
    would miss it; accepting any single burst would chase noise spikes).
    """

    def __init__(
        self,
        noise_floor_db: float = -91.0,
        margin_db: float = 6.0,
        window: int = 50,
        min_activity: float = 0.1,
    ) -> None:
        if window < 1:
            raise ConfigurationError("window must hold at least one snapshot")
        if not 0.0 < min_activity <= 1.0:
            raise ConfigurationError("min_activity must be in (0, 1]")
        self.noise_floor_db = noise_floor_db
        self.margin_db = margin_db
        self.min_activity = min_activity
        self._snapshots: Deque[EnergySnapshot] = deque(maxlen=window)

    def observe(self, snapshot: EnergySnapshot) -> None:
        """Add one snapshot to the window."""
        self._snapshots.append(snapshot)

    def observe_many(self, snapshots: Iterable[EnergySnapshot]) -> None:
        """Add several snapshots."""
        for snapshot in snapshots:
            self.observe(snapshot)

    @property
    def n_observations(self) -> int:
        """Snapshots currently in the window."""
        return len(self._snapshots)

    def activity_fractions(self) -> List[float]:
        """Per-channel fraction of snapshots with supra-floor energy."""
        if not self._snapshots:
            return [0.0, 0.0, 0.0, 0.0]
        threshold = self.noise_floor_db + self.margin_db
        counts = [0, 0, 0, 0]
        for snapshot in self._snapshots:
            for i, level in enumerate(snapshot.levels_db):
                if level > threshold:
                    counts[i] += 1
        return [c / len(self._snapshots) for c in counts]

    def estimate(self) -> Optional[int]:
        """Most-active channel index (1..4), or None if all quiet."""
        fractions = self.activity_fractions()
        best = int(np.argmax(fractions))
        if fractions[best] < self.min_activity:
            return None
        return best + 1


class AdaptiveSledZigController:
    """Hysteresis-guarded protection policy for a WiFi transmitter.

    The controller consumes estimator outputs and decides the protected
    channel.  A change (enable, disable, or switch) is applied only after
    the same estimate repeats ``confirmations`` times, so a single noisy
    capture cannot flap the transmitter between encodings — each flap costs
    a frame's worth of re-planning and, more importantly, changes the
    receiver-visible format.
    """

    def __init__(self, confirmations: int = 3) -> None:
        if confirmations < 1:
            raise ConfigurationError("confirmations must be >= 1")
        self.confirmations = confirmations
        self._current: Optional[int] = None
        self._pending: Optional[int] = None
        self._pending_count = 0
        self._switches = 0

    @property
    def protected_channel(self) -> Optional[int]:
        """Currently protected channel index (1..4) or None (plain WiFi)."""
        return self._current

    @property
    def n_switches(self) -> int:
        """How many times the protection target changed."""
        return self._switches

    def update(self, estimate: Optional[int]) -> Optional[int]:
        """Feed one estimator output; returns the (possibly new) target."""
        if estimate == self._current:
            self._pending = None
            self._pending_count = 0
            return self._current
        if estimate != self._pending:
            self._pending = estimate
            self._pending_count = 1
        else:
            self._pending_count += 1
        if self._pending_count >= self.confirmations:
            self._current = self._pending
            self._pending = None
            self._pending_count = 0
            self._switches += 1
        return self._current
