"""SledZig transmit-side encoding (paper Fig. 6 and Algorithm 1's role).

Given original WiFi data bits, the encoder:

1. sizes the frame: each OFDM symbol donates ``n_dbps - K`` bits to payload,
   where K is the number of significant bits per symbol;
2. obtains the deterministic :class:`~repro.sledzig.insertion.InsertionPlan`
   (extra-bit positions are data-independent, so the receiver can recompute
   them from the SIGNAL field alone plus the detected ZigBee channel);
3. lays SERVICE + PSDU + tail + pad into the non-extra stream slots, applying
   the scrambler mask *at final stream positions* — this is exactly the
   paper's "{x'_i} and {x_n} are the scrambled bits ... the final transmit
   bits will be obtained through descrambling {x_n}";
4. solves every constraint cluster over GF(2) and re-verifies the whole
   stream against the standard convolutional encoder before returning.

The resulting scrambled stream is handed unchanged to the standard
transmitter (:meth:`repro.wifi.transmitter.WifiTransmitter.transmit_scrambled_field`),
which is the compatibility core of SledZig: nothing after the payload
encoding deviates from 802.11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError, InsertionError
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.sledzig.insertion import InsertionPlan, build_stream, plan_insertion, verify_stream
from repro.utils.bits import BitsLike, as_bits
from repro.wifi.params import Mcs, get_mcs
from repro.wifi.ppdu import SERVICE_BITS, TAIL_BITS, DataFieldLayout
from repro.wifi.scrambler import DEFAULT_SEED, Scrambler

#: Largest PSDU (bits) a single frame may carry, from the 12-bit LENGTH field.
_MAX_STREAM_OCTETS = 4095


@dataclass
class SledZigEncodeResult:
    """Output of one SledZig payload encoding.

    Attributes:
        stream: the scrambled-domain transmit stream (extra bits solved).
        plan: the insertion plan used (positions, clusters).
        layout: the DATA-field layout announced over the air; its
            ``n_psdu_bits`` counts *transmitted* bits (data + extra), which
            is what the SIGNAL LENGTH field covers.
        n_data_bits: original WiFi data bits carried.
        n_pad_bits: pad bits after the tail.
        signal_length_octets: LENGTH value for the SIGNAL field.
    """

    stream: np.ndarray
    plan: InsertionPlan
    layout: DataFieldLayout
    n_data_bits: int
    n_pad_bits: int
    signal_length_octets: int

    @property
    def n_extra_bits(self) -> int:
        """Total extra bits inserted."""
        return self.plan.n_extra

    @property
    def overhead_fraction(self) -> float:
        """Extra bits as a fraction of stream bits (the throughput loss)."""
        return self.plan.n_extra / self.plan.n_stream_bits


class SledZigEncoder:
    """Builds SledZig transmit streams for one (MCS, ZigBee channel) pair."""

    def __init__(
        self,
        mcs: "Mcs | str",
        channel: "int | str | OverlapChannel",
        scrambler_seed: int = DEFAULT_SEED,
    ) -> None:
        self.mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
        if self.mcs.modulation in ("bpsk", "qpsk"):
            raise ConfigurationError(
                "SledZig requires a QAM modulation (16/64/256); "
                f"got {self.mcs.modulation}"
            )
        self.channel = get_channel(channel)
        self.scrambler = Scrambler(scrambler_seed)

    def frame_symbols(self, n_data_bits: int) -> int:
        """OFDM symbols needed to carry *n_data_bits* of WiFi data."""
        probe = plan_insertion(self.mcs, self.channel, 1)
        per_symbol_capacity = self.mcs.n_dbps - probe.n_extra
        if per_symbol_capacity <= 0:
            raise ConfigurationError(
                f"{self.mcs.name} leaves no payload capacity on {self.channel.name}"
            )
        needed = SERVICE_BITS + n_data_bits + TAIL_BITS
        n_symbols = max(1, -(-needed // per_symbol_capacity))
        # Clusters can straddle symbol boundaries; confirm against the real
        # plan and grow if the estimate fell short.
        while plan_insertion(self.mcs, self.channel, n_symbols).payload_capacity < needed:
            n_symbols += 1
        return n_symbols

    def encode(self, data_bits: BitsLike) -> SledZigEncodeResult:
        """Encode WiFi data bits into a verified SledZig transmit stream."""
        data = as_bits(data_bits)
        n_symbols = self.frame_symbols(data.size)
        plan = plan_insertion(self.mcs, self.channel, n_symbols)

        stream_octets = -(-plan.n_stream_bits // 8)
        if stream_octets > _MAX_STREAM_OCTETS:
            raise ConfigurationError(
                f"frame of {plan.n_stream_bits} bits exceeds the 12-bit "
                "LENGTH field; split the payload across frames"
            )

        payload_scrambled = self._scrambled_payload(data, plan)
        stream = build_stream(plan, payload_scrambled)
        violations = verify_stream(stream, self.mcs, self.channel)
        if violations:
            raise InsertionError(
                f"{len(violations)} significant bits violated after solving — "
                "this indicates an internal planning bug"
            )

        layout, length_octets = self._announced_layout(plan)
        n_pad = plan.payload_capacity - (SERVICE_BITS + data.size + TAIL_BITS)
        return SledZigEncodeResult(
            stream=stream,
            plan=plan,
            layout=layout,
            n_data_bits=data.size,
            n_pad_bits=n_pad,
            signal_length_octets=length_octets,
        )

    def _scrambled_payload(self, data: np.ndarray, plan: InsertionPlan) -> np.ndarray:
        """Scramble SERVICE + data + tail + pad at their final positions."""
        capacity = plan.payload_capacity
        needed = SERVICE_BITS + data.size + TAIL_BITS
        if needed > capacity:
            raise InsertionError(
                f"payload of {needed} bits exceeds capacity {capacity}"
            )
        unscrambled = np.zeros(capacity, dtype=np.uint8)
        unscrambled[SERVICE_BITS : SERVICE_BITS + data.size] = data

        # Final stream positions of the payload slots (non-extra, ascending).
        occupied = np.ones(plan.n_stream_bits, dtype=bool)
        occupied[list(plan.extra_positions)] = False
        positions = np.flatnonzero(occupied)
        mask = self.scrambler.sequence(plan.n_stream_bits)[positions]
        scrambled = (unscrambled ^ mask).astype(np.uint8)

        tail_slice = slice(SERVICE_BITS + data.size, SERVICE_BITS + data.size + TAIL_BITS)
        scrambled[tail_slice] = 0  # the standard zeroes the scrambled tail
        return scrambled

    def _announced_layout(self, plan: InsertionPlan) -> "tuple[DataFieldLayout, int]":
        """LENGTH and layout describing this frame to a standard receiver.

        The SIGNAL LENGTH must make a standard receiver compute exactly
        ``plan.n_symbols`` DATA symbols; we advertise the largest octet
        count that does.
        """
        n_dbps = self.mcs.n_dbps
        total = plan.n_symbols * n_dbps
        length_octets = (total - SERVICE_BITS - TAIL_BITS) // 8
        length_octets = max(1, min(length_octets, _MAX_STREAM_OCTETS))
        layout = DataFieldLayout(
            n_psdu_bits=length_octets * 8,
            n_symbols=plan.n_symbols,
            n_pad_bits=total - SERVICE_BITS - length_octets * 8 - TAIL_BITS,
        )
        if layout.n_total_bits != total:
            raise InsertionError("announced layout does not match stream size")
        return layout, length_octets
