"""Streaming SledZig receive front end + online ZigBee-channel detection.

SledZig frames *are* standard PPDUs, so the streaming chain reuses the
WiFi stages from :mod:`repro.wifi.streaming` and appends one bit-domain
stage:

* :class:`SledZigStripStage` — channel detection and extra-bit stripping
  per decoded frame (the same arithmetic as
  :func:`repro.sledzig.pipeline.strip_reception`);
* :class:`OnlineChannelDetector` — the continuous variant of
  :func:`repro.sledzig.decoder.detect_zigbee_channel`: per-subcarrier
  power accumulates across every decoded frame of the stream, so the
  protected-channel decision sharpens as the capture runs instead of
  resetting at each frame.  Its running ratios are published as
  telemetry gauges (``sledzig.online.ratio_db.CHn``).

:class:`SledZigStreamReceiver` composes sync → decode → strip into one
push/flush unit whose output is bit-identical for any chunking of the
stream (``detection="frame"``, the default, matches the classic
:class:`~repro.sledzig.pipeline.SledZigReceiver` decision per frame;
``detection="online"`` uses the accumulated estimate instead).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import ConfigurationError, DecodingError, ReproError
from repro.sledzig.channels import OverlapChannel, all_channels, get_channel
from repro.sledzig.decoder import ChannelDetection, SledZigDecoder
from repro.sledzig.pipeline import SledZigReceivedPacket, strip_reception
from repro.streaming.stage import DropEvent, FrameEvent, StreamPipeline
from repro.wifi.params import data_subcarrier_index
from repro.wifi.scrambler import DEFAULT_SEED
from repro.wifi.streaming import (
    DEFAULT_RING_CAPACITY,
    WifiDecodeStage,
    WifiSyncStage,
)

__all__ = [
    "OnlineChannelDetector",
    "SledZigStripStage",
    "SledZigStreamReceiver",
]


class OnlineChannelDetector:
    """Running ZigBee-channel detection over a stream of OFDM symbols.

    Accumulates per-subcarrier power sums across every batch of equalised
    data points it is fed; :meth:`detection` evaluates the same in/out
    power-ratio rule as :func:`~repro.sledzig.decoder.
    detect_zigbee_channel`, but over the whole stream so far.  After one
    frame the two are numerically identical; after N frames the online
    estimate averages N times more symbols.
    """

    def __init__(self, threshold_db: float = -4.0) -> None:
        self.threshold_db = threshold_db
        self._power_sum = np.zeros(48)
        self._n_symbols = 0

    @property
    def n_symbols(self) -> int:
        """OFDM symbols accumulated so far."""
        return self._n_symbols

    def update(self, data_points: Sequence[np.ndarray]) -> None:
        """Fold one frame's per-symbol 48-point arrays into the running sums."""
        stack = np.stack([np.asarray(p) for p in data_points])
        if stack.ndim != 2 or stack.shape[1] != 48:
            raise DecodingError("data_points must be per-symbol arrays of 48 points")
        self._power_sum += np.sum(np.abs(stack) ** 2, axis=0)
        self._n_symbols += stack.shape[0]
        tel = telemetry.current()
        tel.gauge("sledzig.online.symbols", self._n_symbols)
        detection = self.detection()
        for channel, ratio in zip(all_channels(), detection.ratios_db):
            tel.gauge(f"sledzig.online.ratio_db.{channel.name}", ratio)

    def detection(self) -> ChannelDetection:
        """The channel decision given everything accumulated so far."""
        if self._n_symbols == 0:
            raise DecodingError("no symbols accumulated yet")
        per_subcarrier = self._power_sum / self._n_symbols
        ratios: List[float] = []
        for candidate in all_channels():
            inside = [data_subcarrier_index(k) for k in candidate.data_subcarriers]
            outside = [i for i in range(48) if i not in inside]
            p_in = float(np.mean(per_subcarrier[inside]))
            p_out = float(np.mean(per_subcarrier[outside]))
            if p_in <= 0 or p_out <= 0:
                ratios.append(0.0)
                continue
            ratios.append(10.0 * float(np.log10(p_in / p_out)))
        best = int(np.argmin(ratios))
        if ratios[best] <= self.threshold_db:
            return ChannelDetection(all_channels()[best], ratios, self.threshold_db)
        return ChannelDetection(None, ratios, self.threshold_db)


class SledZigStripStage:
    """Strip extra bits from each decoded WiFi frame of the stream.

    Args:
        channel: pin the overlap channel (skips detection entirely).
        detection: ``"frame"`` decides per frame from that frame's
            constellation (classic behaviour); ``"online"`` feeds every
            frame into an :class:`OnlineChannelDetector` and strips with
            the accumulated decision.  Ignored when *channel* is given.
    """

    name = "strip"

    def __init__(
        self,
        channel: "int | str | OverlapChannel | None" = None,
        detection: str = "frame",
        threshold_db: float = -4.0,
    ) -> None:
        if detection not in ("frame", "online"):
            raise ConfigurationError(
                f'detection must be "frame" or "online", got {detection!r}'
            )
        self._pinned = get_channel(channel) if channel is not None else None
        self._mode = detection
        self.detector = OnlineChannelDetector(threshold_db)
        self._decoders: Dict[Optional[str], SledZigDecoder] = {}

    def _decoder_for(self, channel: Optional[OverlapChannel]) -> SledZigDecoder:
        key = channel.name if channel is not None else None
        if key not in self._decoders:
            self._decoders[key] = SledZigDecoder(channel)
        return self._decoders[key]

    def push(self, item: Any) -> List[Any]:
        if not isinstance(item, FrameEvent):
            return [item]
        reception = item.result
        try:
            if self._pinned is not None:
                packet = strip_reception(self._decoder_for(self._pinned), reception)
            elif self._mode == "frame":
                packet = strip_reception(self._decoder_for(None), reception)
            else:
                self.detector.update(reception.data_points)
                decision = self.detector.detection()
                if decision.channel is None:
                    raise DecodingError(
                        "no protected ZigBee channel detected in the "
                        f"accumulated constellation (ratios {decision.ratios_db})"
                    )
                packet = strip_reception(
                    self._decoder_for(decision.channel), reception
                )
                packet = SledZigReceivedPacket(
                    payload=packet.payload,
                    channel=decision.channel,
                    detection=decision,
                    mcs=packet.mcs,
                )
        except ReproError as exc:
            telemetry.current().count(f"sledzig.stream.drop.{type(exc).__name__}")
            return [
                DropEvent(
                    start_sample=item.start_sample, stage=self.name, error=exc
                )
            ]
        telemetry.current().count("sledzig.stream.frames")
        return [FrameEvent(start_sample=item.start_sample, result=packet)]

    def flush(self) -> List[Any]:
        return []


class SledZigStreamReceiver:
    """Chunked SledZig receiver: WiFi sync/decode stages plus stripping."""

    def __init__(
        self,
        channel: "int | str | OverlapChannel | None" = None,
        scrambler_seed: int = DEFAULT_SEED,
        detection: str = "frame",
        sync_threshold: float = 0.5,
        capacity: int = DEFAULT_RING_CAPACITY,
    ) -> None:
        self.sync = WifiSyncStage(
            threshold=sync_threshold, capacity=capacity, ring_name="sledzig"
        )
        self.strip = SledZigStripStage(channel=channel, detection=detection)
        self.pipeline = StreamPipeline(
            [self.sync, WifiDecodeStage(scrambler_seed), self.strip],
            "sledzig.stream",
        )

    def push(self, chunk: np.ndarray) -> List[Any]:
        """Feed one chunk; returns the events it completed."""
        return self.pipeline.push(chunk)

    def flush(self) -> List[Any]:
        """End the stream; returns the final events."""
        return self.pipeline.flush()

    def receive_stream(
        self, chunks: Iterable[np.ndarray]
    ) -> Tuple[List[SledZigReceivedPacket], List[DropEvent]]:
        """Convenience: run a whole chunk iterator, split the outcome."""
        events = self.pipeline.run(chunks)
        frames = [e.result for e in events if isinstance(e, FrameEvent)]
        drops = [e for e in events if isinstance(e, DropEvent)]
        return frames, drops
