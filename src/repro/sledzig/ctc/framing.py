"""CTC packet framing: preamble, sync word, length, payload, CRC-16.

The side channel is slow (one symbol per WiFi frame or burst), so the
frame format is deliberately minimal::

    | preamble 16 bits | sync 16 bits | length 8 bits | payload | CRC-16 |

* the **preamble** alternates ``1 0 1 0 ...`` — maximum RSSI transitions
  for the demodulator's threshold estimate and symbol-timing scan;
* the **sync word** (0x2D 0xD4, the 802.15.4 SFD followed by its
  complement) marks the bit origin; the demodulator requires an exact
  match, so a random RSSI flutter that happens to alternate cannot start
  a frame;
* **length** is one octet counting payload bytes (bounded by
  :data:`MAX_PAYLOAD_OCTETS`);
* the **CRC-16/CCITT-FALSE** over length+payload rejects frames whose
  payload symbols were corrupted.

All bytes are serialised LSB-first, matching the rest of the library
(:mod:`repro.utils.bits`).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import CtcCrcError, CtcFramingError
from repro.utils.bits import bits_to_bytes, bytes_to_bits
from repro.utils.validation import require

__all__ = [
    "CRC_OCTETS",
    "LENGTH_BITS",
    "MAX_PAYLOAD_OCTETS",
    "PREAMBLE_BITS",
    "SYNC_BITS",
    "SYNC_PATTERN",
    "crc16",
    "frame_bits",
    "parse_length",
    "parse_body",
]

#: Alternating preamble bits (two octets of 0b01010101, LSB-first).
PREAMBLE_BITS: Tuple[int, ...] = tuple([1, 0] * 8)

#: The sync word octets: the 802.15.4 SFD (0xA7 reversed = 0x2D... kept
#: simply as two fixed octets with good autocorrelation).
_SYNC_OCTETS = b"\x2d\xd4"

#: Sync word bits, LSB-first.
SYNC_BITS: Tuple[int, ...] = tuple(int(b) for b in bytes_to_bits(_SYNC_OCTETS))

#: The full lock pattern the demodulator exact-matches.
SYNC_PATTERN: Tuple[int, ...] = PREAMBLE_BITS + SYNC_BITS

#: Length field width.
LENGTH_BITS: int = 8

#: CRC-16 trailer size.
CRC_OCTETS: int = 2

#: Bound on the payload a single CTC frame may carry.
MAX_PAYLOAD_OCTETS: int = 64


def crc16(data: bytes) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF) of *data*."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021 if crc & 0x8000 else crc << 1) & 0xFFFF
    return crc


def frame_bits(payload: bytes) -> np.ndarray:
    """The full bit sequence of one CTC frame carrying *payload*.

    Raises:
        ConfigurationError: when the payload exceeds
            :data:`MAX_PAYLOAD_OCTETS`.
    """
    payload = bytes(payload)
    require(
        len(payload) <= MAX_PAYLOAD_OCTETS,
        f"CTC payload is {len(payload)} octets; max {MAX_PAYLOAD_OCTETS}",
    )
    body = bytes([len(payload)]) + payload
    trailer = crc16(body).to_bytes(CRC_OCTETS, "little")
    return np.concatenate(
        [
            np.asarray(SYNC_PATTERN, dtype=np.uint8),
            bytes_to_bits(body + trailer),
        ]
    )


def frame_bit_count(payload_octets: int) -> int:
    """Total bits of a frame carrying *payload_octets* bytes."""
    return len(SYNC_PATTERN) + LENGTH_BITS + 8 * (payload_octets + CRC_OCTETS)


def parse_length(length_bits: np.ndarray, max_payload: int = MAX_PAYLOAD_OCTETS) -> int:
    """Decode the length octet; typed error when it announces too much.

    Raises:
        CtcFramingError: length beyond *max_payload* — corrupted header
            symbols or a false lock.
    """
    length = bits_to_bytes(np.asarray(length_bits, dtype=np.uint8))[0]
    if length > max_payload:
        raise CtcFramingError(
            f"CTC length octet announces {length} payload octets; "
            f"max {max_payload}"
        )
    return int(length)


def parse_body(length: int, body_bits: np.ndarray) -> bytes:
    """Decode payload+CRC bits of a frame whose length is already known.

    Raises:
        CtcCrcError: the CRC-16 over length+payload does not match.
    """
    octets = bits_to_bytes(np.asarray(body_bits, dtype=np.uint8))
    payload, trailer = octets[:length], octets[length:]
    expected = crc16(bytes([length]) + payload)
    received = int.from_bytes(trailer, "little")
    if received != expected:
        raise CtcCrcError(
            f"CTC CRC mismatch: received 0x{received:04x}, "
            f"expected 0x{expected:04x} over {length} payload octets"
        )
    return payload
