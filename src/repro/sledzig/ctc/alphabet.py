"""Power-pattern symbol alphabet of the WiFi->ZigBee CTC side channel.

SledZig already shapes the per-subcarrier power of the span overlapping a
ZigBee channel; FreeBee and OfdmFi showed that shaped energy can *carry
data* to the other technology.  The alphabet here modulates *how many* of
the span's data subcarriers are silenced per WiFi frame:

* symbol **1** — full protection: every controllable data subcarrier of
  the span carries lowest-power points (the plain SledZig pattern);
* symbol **0** — ``depth`` of those subcarriers (the ones farthest from
  the ZigBee channel centre) revert to normal power, raising the in-band
  level by a predictable margin while the remaining subcarriers keep the
  bulk of the protection.

A ZigBee-side energy sampler sees the two patterns as two RSSI levels;
their separation grows with ``depth`` (the *modulation depth*), and so
does the protection given up during 0-symbols — the throughput-vs-
protection trade-off the ``ctc`` experiment sweeps.

Both symbol patterns are ordinary :class:`~repro.sledzig.channels.
OverlapChannel` variants, so the insertion solver, encoder and verifier
run unchanged: every CTC-modulated frame is still a standard-compliant
802.11 stream.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Tuple

from repro.channel.calibration import DEFAULT_CALIBRATION, Calibration
from repro.sledzig.channels import (
    OverlapChannel,
    channel_with_n_data,
    get_channel,
)
from repro.utils.validation import require
from repro.wifi.constellation import lowest_point_power
from repro.wifi.params import average_constellation_power, get_mcs

__all__ = [
    "CtcAlphabet",
    "ctc_alphabet",
    "pattern_band_decrease_db",
    "scaled_decreases_db",
]


def pattern_band_decrease_db(
    modulation: str, channel: "int | str | OverlapChannel", n_silenced: int
) -> float:
    """In-band decrease when only *n_silenced* data subcarriers are low.

    Unlike :func:`repro.sledzig.analysis.expected_band_decrease_db` on a
    reduced variant channel (which drops the un-silenced subcarriers from
    the span entirely), the subcarriers left at normal power stay in the
    band's denominator::

        decrease = (n_data + n_pilot) /
                   (n_silenced * P_low/P_avg + (n_data - n_silenced) + n_pilot)

    With ``n_silenced == n_data`` this reduces to the full-pattern formula.
    """
    ch = get_channel(channel)
    n_data = ch.n_data_subcarriers
    require(
        0 <= n_silenced <= n_data,
        f"n_silenced must be 0..{n_data} for {ch.name}, got {n_silenced}",
    )
    ratio = lowest_point_power(modulation) / average_constellation_power(modulation)
    n_pilot = len(ch.pilot_subcarriers)
    normal = n_data + n_pilot
    shaped = n_silenced * ratio + (n_data - n_silenced) + n_pilot
    return float(10.0 * math.log10(normal / shaped))


@dataclass(frozen=True)
class CtcAlphabet:
    """The two power patterns of a binary CTC symbol alphabet.

    Attributes:
        mcs_name: the WiFi MCS carrying the frames.
        channel: the protected overlap channel (full span description).
        depth: modulation depth — data subcarriers released during a
            0-symbol.
        symbol_channels: the per-symbol encoder channels, indexed by bit
            value (``symbol_channels[0]`` silences ``n_data - depth``).
        decreases_db: analytic in-band decrease per bit value, over the
            full span (``decreases_db[1]`` is the plain SledZig decrease).
    """

    mcs_name: str
    channel: OverlapChannel
    depth: int
    symbol_channels: Tuple[OverlapChannel, OverlapChannel]
    decreases_db: Tuple[float, float]

    @property
    def separation_db(self) -> float:
        """RSSI distance between the two symbols (the demodulator's eye)."""
        return self.decreases_db[1] - self.decreases_db[0]


@lru_cache(maxsize=None)
def _cached_alphabet(
    mcs_name: str, channel: OverlapChannel, depth: int
) -> CtcAlphabet:
    modulation = get_mcs(mcs_name).modulation
    n_data = channel.n_data_subcarriers
    require(
        1 <= depth < n_data,
        f"CTC depth must be 1..{n_data - 1} on {channel.name} "
        f"(symbol 0 must keep some protection), got {depth}",
    )
    low = channel_with_n_data(channel, n_data - depth)
    return CtcAlphabet(
        mcs_name=mcs_name,
        channel=channel,
        depth=depth,
        symbol_channels=(low, channel),
        decreases_db=(
            pattern_band_decrease_db(modulation, channel, n_data - depth),
            pattern_band_decrease_db(modulation, channel, n_data),
        ),
    )


def ctc_alphabet(
    mcs_name: str, channel: "int | str | OverlapChannel", depth: int
) -> CtcAlphabet:
    """Build (and cache) the alphabet for one MCS/channel/depth triple."""
    return _cached_alphabet(mcs_name, get_channel(channel), depth)


def scaled_decreases_db(
    alphabet: CtcAlphabet, calibration: Calibration = DEFAULT_CALIBRATION
) -> Tuple[float, float]:
    """Measured-anchored per-symbol decreases for the scenario engine.

    The coexistence simulator works in the calibration's *measured* dB
    domain (testbed RSSI decreases, smaller than the analytic values
    because of spectral leakage).  The 1-symbol decrease is the measured
    plain-SledZig number; the 0-symbol decrease scales it by the analytic
    ratio of the two patterns, keeping the simulated eye consistent with
    the analytic separation.
    """
    from repro.channel.calibration import sledzig_decrease_db

    modulation = get_mcs(alphabet.mcs_name).modulation
    measured_full = sledzig_decrease_db(modulation, alphabet.channel.index)
    analytic_low, analytic_full = alphabet.decreases_db
    return (measured_full * analytic_low / analytic_full, measured_full)
