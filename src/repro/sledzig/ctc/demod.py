"""ZigBee-side CTC demodulator: RSSI energy sampling to framed bytes.

The receiver never decodes WiFi.  It samples the in-band power of its own
2 MHz channel (one RSSI register read per WiFi frame, or faster) and sees
the transmitter's power-pattern schedule as a two-level waveform.  The
demodulator turns that sample stream back into CTC frames:

1. **symbol timing + sync** — a sliding 32-symbol window (preamble + sync
   word) is mean-pooled into candidate symbols at every sample offset, so
   every symbol phase is tried without an explicit timing loop.  A window
   qualifies only if its level swing clears ``min_swing_db`` (an idle
   channel has no eye to slice); the slicing threshold is the midpoint of
   the window's two level clusters (the sorted halves — the pattern is
   exactly half ones), and a candidate locks only on an *exact*
   :data:`~repro.sledzig.ctc.framing.SYNC_PATTERN` match.  Bit **1** is
   the *quieter* level — symbol 1 is the fully protected pattern, which
   suppresses the most in-band power;
2. **header** — 8 length bits sliced with the locked threshold
   (:func:`~repro.sledzig.ctc.framing.parse_length`; an impossible length
   drops the candidate as :class:`~repro.errors.CtcFramingError`);
3. **payload** — ``(length + 2) * 8`` bits sliced and checked
   (:func:`~repro.sledzig.ctc.framing.parse_body`; a CRC mismatch drops
   the frame as :class:`~repro.errors.CtcCrcError`).

The demodulator implements the :class:`~repro.streaming.stage.Stage`
protocol over a bounded :class:`~repro.streaming.ring.SampleRing`, with
every decision addressed by absolute stream position and deferred until
its full window is buffered — so any chunking of an RSSI capture decodes
bit-identically (pinned by the chunk-invariance property tests).

Every outcome is counted under ``ctc.rx.*`` so run manifests carry the
sync/symbol/CRC error budget alongside the delivered frames.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.errors import (
    ConfigurationError,
    CtcCrcError,
    CtcFramingError,
    CtcSyncError,
    InvalidWaveformError,
    ReproError,
    TruncatedFrameError,
)
from repro.sledzig.channels import OverlapChannel, get_channel
from repro.sledzig.ctc.framing import (
    CRC_OCTETS,
    LENGTH_BITS,
    MAX_PAYLOAD_OCTETS,
    PREAMBLE_BITS,
    SYNC_PATTERN,
    frame_bit_count,
    parse_body,
    parse_length,
)
from repro.streaming.ring import SampleRing
from repro.streaming.stage import DropEvent, FrameEvent
from repro.utils.validation import require
from repro.wifi.preamble import PREAMBLE_LENGTH
from repro.wifi.spectral import band_power_db

__all__ = [
    "CtcDemodulator",
    "CtcFrame",
    "demodulate",
    "rssi_from_frames",
    "slice_bits",
]

#: Samples to skip before measuring a frame's band power (WiFi preamble +
#: SIGNAL symbol — same rule as the Fig. 11/12 RSSI experiments).
_DATA_START = PREAMBLE_LENGTH + 80

#: States of the demodulator machine.
_SEARCH, _HEADER, _PAYLOAD = range(3)

_SYNC_SYMBOLS = len(SYNC_PATTERN)
_PREAMBLE = np.asarray(PREAMBLE_BITS, dtype=np.uint8)
_SYNC = np.asarray(SYNC_PATTERN, dtype=np.uint8)


@dataclass
class CtcFrame:
    """One delivered side-channel frame.

    Attributes:
        payload: the CRC-validated side-channel bytes.
        start_sample: absolute RSSI-stream index the frame's preamble
            starts at.
        threshold_db: the slicing threshold the lock estimated.
        swing_db: level swing of the lock window (the received eye).
    """

    payload: bytes
    start_sample: int
    threshold_db: float
    swing_db: float


def slice_bits(
    samples: "np.ndarray | Sequence[float]",
    samples_per_symbol: int,
    threshold_db: Optional[float] = None,
) -> np.ndarray:
    """Mean-pool an aligned RSSI stream into hard bits (raw-BER helper).

    Pools *samples* into ``len // samples_per_symbol`` symbols and slices
    at *threshold_db* (default: midpoint of the observed symbol levels).
    No sync, no framing — the experiment's raw symbol-error probe, where
    the alignment is known by construction.
    """
    require(samples_per_symbol >= 1, "samples_per_symbol must be >= 1")
    arr = np.asarray(samples, dtype=np.float64).ravel()
    n_symbols = arr.size // samples_per_symbol
    means = arr[: n_symbols * samples_per_symbol].reshape(
        n_symbols, samples_per_symbol
    ).mean(axis=1)
    if threshold_db is None:
        threshold_db = float(means.min() + means.max()) / 2.0
    return (means < threshold_db).astype(np.uint8)


def rssi_from_frames(
    waveforms: Iterable[np.ndarray],
    channel: "OverlapChannel | str | int",
    bandwidth_hz: float = 2e6,
) -> np.ndarray:
    """One ZigBee-band RSSI sample per WiFi frame waveform (dB).

    Measures each frame's DATA portion (preamble and SIGNAL skipped, like
    the Fig. 11/12 experiments) in the 2 MHz band of *channel* — the
    waveform-domain model of a receiver that reads its RSSI register once
    per overheard frame.
    """
    ch = get_channel(channel)
    return np.asarray(
        [
            band_power_db(
                np.asarray(w)[_DATA_START:], ch.center_offset_hz, bandwidth_hz
            )
            for w in waveforms
        ],
        dtype=np.float64,
    )


class CtcDemodulator:
    """Streaming CTC receiver (implements the ``Stage`` protocol).

    Args:
        samples_per_symbol: RSSI samples per CTC symbol (the transmit
            side's ``frames_per_symbol`` when sampling once per frame).
        min_swing_db: minimum high-low separation of a lock window; below
            it the channel is considered idle/noise and no lock is tried.
        max_payload: announced lengths beyond this drop the candidate.
        capacity: RSSI sample ring bound; must hold a worst-case frame.
    """

    name = "ctc-demod"

    def __init__(
        self,
        samples_per_symbol: int = 1,
        min_swing_db: float = 0.75,
        max_payload: int = MAX_PAYLOAD_OCTETS,
        capacity: int = 1 << 13,
        ring_name: str = "ctc",
    ) -> None:
        require(samples_per_symbol >= 1, "samples_per_symbol must be >= 1")
        require(min_swing_db > 0.0, "min_swing_db must be positive")
        require(1 <= max_payload <= MAX_PAYLOAD_OCTETS,
                f"max_payload must be 1..{MAX_PAYLOAD_OCTETS}, got {max_payload}")
        self.sps = int(samples_per_symbol)
        self.min_swing_db = float(min_swing_db)
        self.max_payload = int(max_payload)
        worst = frame_bit_count(max_payload) * self.sps
        if worst > capacity:
            raise ConfigurationError(
                f"ring of {capacity} samples cannot hold a worst-case CTC "
                f"frame of {worst} samples; raise capacity or lower "
                f"max_payload/samples_per_symbol"
            )
        self.ring = SampleRing(capacity, dtype=np.float64, name=ring_name)
        self._state = _SEARCH
        self._pos = 0  # next candidate start (absolute), SEARCH state
        self._frame_start = 0
        self._threshold = 0.0
        self._swing = 0.0
        self._length = 0

    # -- internals --------------------------------------------------------

    def _drop(self, error: ReproError, at: int) -> DropEvent:
        telemetry.current().count(f"ctc.rx.drop.{type(error).__name__}")
        return DropEvent(start_sample=at, stage=self.name, error=error)

    def _symbol_means(self, start: int, n_symbols: int) -> np.ndarray:
        window = np.asarray(
            self.ring.view(start, start + n_symbols * self.sps), dtype=np.float64
        )
        return window.reshape(n_symbols, self.sps).mean(axis=1)

    def _abort_lock(self, events: List[Any], error: ReproError) -> None:
        """Drop the locked candidate and resume searching one sample on."""
        events.append(self._drop(error, self._frame_start))
        self._state = _SEARCH
        self._pos = self._frame_start + 1
        self.ring.release(self._pos)

    def _process(self) -> List[Any]:
        tel = telemetry.current()
        events: List[Any] = []
        while True:
            if self._state == _SEARCH:
                window_end = self._pos + _SYNC_SYMBOLS * self.sps
                if window_end > self.ring.end:
                    self.ring.release(self._pos)
                    return events
                means = self._symbol_means(self._pos, _SYNC_SYMBOLS)
                # SYNC_PATTERN is exactly balanced (16 ones / 16 zeros),
                # so the lower and upper sorted halves of an aligned
                # window ARE the two symbol clusters; their midpoint is
                # robust to the loud outliers a min/max midpoint skews on
                # (payload-dependent power of released subcarriers).
                ordered = np.sort(means)
                lo = float(ordered[: _SYNC_SYMBOLS // 2].mean())
                hi = float(ordered[_SYNC_SYMBOLS // 2 :].mean())
                if hi - lo >= self.min_swing_db:
                    threshold = (lo + hi) / 2.0
                    bits = (means < threshold).astype(np.uint8)
                    if np.array_equal(bits, _SYNC):
                        tel.count("ctc.rx.locks")
                        self._state = _HEADER
                        self._frame_start = self._pos
                        self._threshold = threshold
                        self._swing = hi - lo
                        continue
                    if np.array_equal(bits[: _PREAMBLE.size], _PREAMBLE):
                        tel.count("ctc.rx.sync_errors")
                        events.append(self._drop(
                            CtcSyncError(
                                f"preamble at sample {self._pos} but the sync "
                                f"word did not match"
                            ),
                            self._pos,
                        ))
                self._pos += 1
            elif self._state == _HEADER:
                header_symbols = _SYNC_SYMBOLS + LENGTH_BITS
                if self._frame_start + header_symbols * self.sps > self.ring.end:
                    self.ring.release(self._frame_start)
                    return events
                means = self._symbol_means(
                    self._frame_start + _SYNC_SYMBOLS * self.sps, LENGTH_BITS
                )
                bits = (means < self._threshold).astype(np.uint8)
                try:
                    self._length = parse_length(bits, self.max_payload)
                except CtcFramingError as error:
                    tel.count("ctc.rx.header_errors")
                    self._abort_lock(events, error)
                    continue
                self._state = _PAYLOAD
            else:  # _PAYLOAD
                total_symbols = frame_bit_count(self._length)
                frame_end = self._frame_start + total_symbols * self.sps
                if frame_end > self.ring.end:
                    self.ring.release(self._frame_start)
                    return events
                body_symbols = 8 * (self._length + CRC_OCTETS)
                means = self._symbol_means(
                    self._frame_start
                    + (_SYNC_SYMBOLS + LENGTH_BITS) * self.sps,
                    body_symbols,
                )
                bits = (means < self._threshold).astype(np.uint8)
                try:
                    payload = parse_body(self._length, bits)
                except CtcCrcError as error:
                    tel.count("ctc.rx.crc_errors")
                    self._abort_lock(events, error)
                    continue
                tel.count("ctc.rx.frames")
                tel.count("ctc.rx.symbols", total_symbols)
                events.append(FrameEvent(
                    start_sample=self._frame_start,
                    result=CtcFrame(
                        payload=payload,
                        start_sample=self._frame_start,
                        threshold_db=self._threshold,
                        swing_db=self._swing,
                    ),
                ))
                self._state = _SEARCH
                self._pos = frame_end
                self.ring.release(self._pos)

    # -- Stage protocol ---------------------------------------------------

    def push(self, chunk: "np.ndarray | Sequence[float]") -> List[Any]:
        """Ingest one RSSI chunk (any size) and emit what it completes."""
        arr = np.asarray(chunk, dtype=np.float64).ravel()
        if arr.size and not np.all(np.isfinite(arr)):
            raise InvalidWaveformError(
                "RSSI stream contains non-finite samples"
            )
        telemetry.current().count("ctc.rx.samples", int(arr.size))
        events: List[Any] = []
        consumed = 0
        while consumed < arr.size:
            free = self.ring.capacity - self.ring.occupancy
            take = min(arr.size - consumed, free)
            self.ring.append(arr[consumed : consumed + take])
            consumed += take
            events.extend(self._process())
        return events

    def flush(self) -> List[Any]:
        """The stream ended; locked-but-incomplete frames are truncated.

        After dropping a dead lock the remaining buffer is rescanned (a
        false lock may have been sitting on a real frame), so flush loops
        until the machine settles in the search state.
        """
        events: List[Any] = []
        while self._state != _SEARCH:
            self._abort_lock(
                events,
                TruncatedFrameError(
                    f"RSSI stream ended mid-frame (locked at sample "
                    f"{self._frame_start})"
                ),
            )
            events.extend(self._process())
        return events


def demodulate(
    samples: "np.ndarray | Sequence[float]",
    samples_per_symbol: int = 1,
    **kwargs: Any,
) -> Tuple[List[CtcFrame], List[DropEvent]]:
    """Decode one full RSSI capture (single-push convenience wrapper)."""
    demod = CtcDemodulator(samples_per_symbol=samples_per_symbol, **kwargs)
    events = list(demod.push(samples)) + list(demod.flush())
    frames = [e.result for e in events if isinstance(e, FrameEvent)]
    drops = [e for e in events if isinstance(e, DropEvent)]
    return frames, drops
