"""WiFi->ZigBee CTC side channel over the protected-subcarrier pattern.

SledZig silences the subcarriers overlapping a ZigBee channel to protect
its receptions; this package modulates *that pattern itself* over time
into a low-rate message channel (FreeBee/OfdmFi-style energy signalling):

* :mod:`~repro.sledzig.ctc.alphabet` — the binary power-pattern alphabet
  (full protection vs. ``depth`` released subcarriers) and its analytic
  RSSI separation;
* :mod:`~repro.sledzig.ctc.framing` — preamble/sync/length/payload/CRC
  packet format of the side channel;
* :mod:`~repro.sledzig.ctc.modem` — the transmit side: a pattern schedule
  per side-channel frame, realised by plain SledZig transmitters;
* :mod:`~repro.sledzig.ctc.demod` — the ZigBee-side energy-sampling
  receiver: symbol timing, sync, framing and CRC over an RSSI stream,
  chunk-invariant and constant-memory.

The ``ctc`` experiment (:mod:`repro.experiments.ctc_tradeoff`) sweeps the
alphabet's depth and symbol rate against side-channel BER and the primary
ZigBee delivery ratio.
"""

from repro.sledzig.ctc.alphabet import (
    CtcAlphabet,
    ctc_alphabet,
    pattern_band_decrease_db,
    scaled_decreases_db,
)
from repro.sledzig.ctc.demod import (
    CtcDemodulator,
    CtcFrame,
    demodulate,
    rssi_from_frames,
    slice_bits,
)
from repro.sledzig.ctc.framing import (
    MAX_PAYLOAD_OCTETS,
    SYNC_PATTERN,
    crc16,
    frame_bits,
)
from repro.sledzig.ctc.modem import (
    CtcModulator,
    CtcTransmission,
    CtcTransmitter,
    synthesize_rssi,
)

__all__ = [
    "CtcAlphabet",
    "CtcDemodulator",
    "CtcFrame",
    "CtcModulator",
    "CtcTransmission",
    "CtcTransmitter",
    "MAX_PAYLOAD_OCTETS",
    "SYNC_PATTERN",
    "crc16",
    "ctc_alphabet",
    "demodulate",
    "frame_bits",
    "pattern_band_decrease_db",
    "rssi_from_frames",
    "scaled_decreases_db",
    "slice_bits",
    "synthesize_rssi",
]
