"""CTC modulator: map side-channel bits onto per-frame power patterns.

The modulator turns a side-channel payload into a *pattern schedule* —
one alphabet bit per WiFi frame — and the transmitter realises each bit
with a :class:`~repro.sledzig.pipeline.SledZigTransmitter` configured for
that bit's symbol channel.  The primary WiFi payloads ride unchanged:
every emitted frame is a standard-compliant SledZig stream; only *which*
subcarriers the insertion solver silences varies frame to frame.

``frames_per_symbol`` repeats each CTC symbol over several consecutive
WiFi frames.  The ZigBee side samples RSSI once per frame, so the factor
trades side-channel rate for per-symbol noise averaging — the symbol-rate
axis of the ``ctc`` experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.sledzig.ctc.alphabet import CtcAlphabet, ctc_alphabet
from repro.sledzig.ctc.framing import frame_bits
from repro.sledzig.pipeline import SledZigTransmission, SledZigTransmitter
from repro.utils.validation import require

__all__ = [
    "CtcModulator",
    "CtcTransmission",
    "CtcTransmitter",
    "synthesize_rssi",
]


class CtcModulator:
    """Side-channel bits -> per-WiFi-frame pattern schedule."""

    def __init__(
        self,
        mcs_name: str = "qam64-2/3",
        channel: "int | str" = "CH1",
        depth: int = 1,
        frames_per_symbol: int = 1,
    ) -> None:
        require(
            frames_per_symbol >= 1,
            f"frames_per_symbol must be >= 1, got {frames_per_symbol}",
        )
        self.alphabet: CtcAlphabet = ctc_alphabet(mcs_name, channel, depth)
        self.frames_per_symbol = int(frames_per_symbol)

    def symbol_bits(self, payload: bytes) -> np.ndarray:
        """The framed bit sequence (preamble/sync/length/payload/CRC)."""
        return frame_bits(payload)

    def pattern_schedule(self, payload: bytes) -> Tuple[int, ...]:
        """One alphabet bit per WiFi frame, symbols repeated per the rate."""
        return tuple(
            int(bit)
            for bit in self.symbol_bits(payload)
            for _ in range(self.frames_per_symbol)
        )


@dataclass
class CtcTransmission:
    """One side-channel frame realised as WiFi waveforms.

    Attributes:
        ctc_payload: the side-channel bytes carried.
        schedule: the per-WiFi-frame alphabet bits.
        frames: the underlying SledZig transmissions, one per schedule
            entry (None when the transmitter ran in schedule-only mode).
    """

    ctc_payload: bytes
    schedule: Tuple[int, ...]
    frames: Optional[List[SledZigTransmission]] = None

    @property
    def waveforms(self) -> List[np.ndarray]:
        """The per-frame complex baseband waveforms."""
        if self.frames is None:
            raise ValueError("schedule-only transmission carries no waveforms")
        return [frame.waveform for frame in self.frames]


class CtcTransmitter:
    """Layer a CTC side channel on the SledZig transmit pipeline.

    One :class:`SledZigTransmitter` per symbol pattern; both see the same
    MCS and scrambler seed, so the primary payload path is byte-identical
    to plain SledZig — the side channel changes only the silenced set.
    """

    def __init__(
        self,
        mcs_name: str = "qam64-2/3",
        channel: "int | str" = "CH1",
        depth: int = 1,
        frames_per_symbol: int = 1,
        scrambler_seed: int = 93,
    ) -> None:
        self.modulator = CtcModulator(mcs_name, channel, depth, frames_per_symbol)
        self.transmitters = tuple(
            SledZigTransmitter(
                mcs=mcs_name, channel=ch, scrambler_seed=scrambler_seed
            )
            for ch in self.modulator.alphabet.symbol_channels
        )

    @property
    def alphabet(self) -> CtcAlphabet:
        return self.modulator.alphabet

    def max_payload_per_frame(self) -> int:
        """Largest primary payload either pattern can carry per frame."""
        return min(tx.max_payload_per_frame() for tx in self.transmitters)

    def send(
        self,
        ctc_payload: bytes,
        wifi_payloads: Sequence[bytes],
    ) -> CtcTransmission:
        """Encode one side-channel frame over real WiFi frames.

        *wifi_payloads* supplies the primary traffic; it is cycled when
        shorter than the schedule (side-channel symbols must not stall for
        primary data).
        """
        require(len(wifi_payloads) >= 1, "need at least one WiFi payload")
        schedule = self.modulator.pattern_schedule(ctc_payload)
        tel = telemetry.current()
        frames = []
        for index, bit in enumerate(schedule):
            payload = wifi_payloads[index % len(wifi_payloads)]
            frames.append(self.transmitters[bit].send(payload))
        tel.count("ctc.tx.frames", len(schedule))
        tel.count("ctc.tx.symbols", len(self.modulator.symbol_bits(ctc_payload)))
        tel.count("ctc.tx.payload_octets", len(ctc_payload))
        return CtcTransmission(
            ctc_payload=bytes(ctc_payload), schedule=schedule, frames=frames
        )

    def schedule_only(self, ctc_payload: bytes) -> CtcTransmission:
        """The pattern schedule without encoding waveforms (scenario use)."""
        return CtcTransmission(
            ctc_payload=bytes(ctc_payload),
            schedule=self.modulator.pattern_schedule(ctc_payload),
        )


def synthesize_rssi(
    schedule: Sequence[int],
    samples_per_frame: int,
    levels_db: Tuple[float, float],
    *,
    idle_db: float = -95.0,
    lead_in: int = 0,
    tail: int = 0,
    noise_db: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """An RSSI sample stream for a pattern schedule (RSSI-domain model).

    Each schedule entry contributes *samples_per_frame* samples at its
    symbol's level; *lead_in*/*tail* idle samples bracket the frame and
    Gaussian reported-dB noise of *noise_db* standard deviation models the
    receiver's RSSI register jitter.  The experiment's BER waterfalls and
    the chunk-invariance property tests run on these streams; the
    waveform-domain path (:func:`repro.sledzig.ctc.demod.rssi_from_frames`)
    validates the levels against real encoded frames.
    """
    require(samples_per_frame >= 1, "samples_per_frame must be >= 1")
    levels = np.asarray(levels_db, dtype=np.float64)
    body = np.repeat(levels[np.asarray(schedule, dtype=np.intp)], samples_per_frame)
    stream = np.concatenate(
        [np.full(lead_in, idle_db), body, np.full(tail, idle_db)]
    )
    if noise_db > 0.0:
        if rng is None:
            raise ValueError("noise_db > 0 requires an explicit rng")
        stream = stream + rng.normal(0.0, noise_db, size=stream.size)
    return stream
