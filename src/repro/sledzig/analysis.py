"""Closed-form SledZig analysis: power decrease, extra bits, throughput loss.

Reproduces the analytic results of the paper:

* Section III-B: putting the four lowest constellation points on a
  subcarrier reduces its power by P_avg / P_low — 7.0, 13.2 and 19.3 dB for
  QAM-16/64/256.
* Table III: number of extra bits per OFDM symbol per (modulation, rate,
  channel group).
* Table IV: WiFi throughput loss = extra bits / data bits per symbol.
* The in-band (2 MHz) power decrease including the pilot dilution that
  limits CH1-CH3 (Section IV-E), the first-order model behind Fig. 12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.sledzig.channels import OverlapChannel, all_channels, get_channel
from repro.sledzig.significant import extra_bits_per_symbol
from repro.wifi.constellation import lowest_point_power
from repro.wifi.params import (
    PAPER_MCS_NAMES,
    Mcs,
    average_constellation_power,
    get_mcs,
)


def theoretical_power_decrease_db(modulation: str) -> float:
    """P_avg / P_low in dB (Section III-B: 7.0 / 13.2 / 19.3 dB)."""
    p_avg = average_constellation_power(modulation)
    p_low = lowest_point_power(modulation)
    return float(10.0 * np.log10(p_avg / p_low))


def expected_band_decrease_db(
    modulation: str, channel: "int | str | OverlapChannel"
) -> float:
    """First-order in-band power decrease for one overlap channel.

    Normal WiFi puts unit average power on every used subcarrier of the
    span; SledZig reduces the data subcarriers to P_low / P_avg but cannot
    touch the pilot, so for CH1-CH3::

        decrease = (n_data + n_pilot) / (n_data * P_low/P_avg + n_pilot)

    For CH4 (no pilot) the decrease equals the full constellation ratio.
    Spectral leakage makes measured values slightly smaller; the waveform
    experiments (Fig. 11/12) quantify that.
    """
    ch = get_channel(channel)
    ratio = lowest_point_power(modulation) / average_constellation_power(modulation)
    n_data = ch.n_data_subcarriers
    n_pilot = len(ch.pilot_subcarriers)
    normal = n_data + n_pilot
    sled = n_data * ratio + n_pilot
    return float(10.0 * np.log10(normal / sled))


@dataclass(frozen=True)
class ExtraBitsRow:
    """One row of the paper's Table III.

    Attributes:
        mcs_name: <modulation>-<rate>.
        n_dbps: data bits per OFDM symbol.
        extra_ch13: extra bits per symbol on CH1-CH3.
        extra_ch4: extra bits per symbol on CH4.
    """

    mcs_name: str
    n_dbps: int
    extra_ch13: int
    extra_ch4: int


def extra_bits_table(mcs_names: Tuple[str, ...] = PAPER_MCS_NAMES) -> List[ExtraBitsRow]:
    """Recompute Table III from the significant-bit derivation."""
    rows = []
    for name in mcs_names:
        mcs = get_mcs(name)
        rows.append(
            ExtraBitsRow(
                mcs_name=name,
                n_dbps=mcs.n_dbps,
                extra_ch13=extra_bits_per_symbol(mcs, "CH1"),
                extra_ch4=extra_bits_per_symbol(mcs, "CH4"),
            )
        )
    return rows


@dataclass(frozen=True)
class ThroughputLossRow:
    """One row of the paper's Table IV.

    Attributes:
        mcs_name: <modulation>-<rate>.
        min_snr_db: minimum SNR for the mode (paper Table IV column).
        loss_ch13: fractional throughput loss on CH1-CH3.
        loss_ch4: fractional throughput loss on CH4.
    """

    mcs_name: str
    min_snr_db: float
    loss_ch13: float
    loss_ch4: float


def throughput_loss(mcs: "Mcs | str", channel: "int | str | OverlapChannel") -> float:
    """Fractional WiFi throughput loss: extra bits / data bits per symbol."""
    mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
    return extra_bits_per_symbol(mcs, channel) / mcs.n_dbps


def throughput_loss_table(
    mcs_names: Tuple[str, ...] = PAPER_MCS_NAMES,
) -> List[ThroughputLossRow]:
    """Recompute Table IV (loss ranges 6.94% .. 14.58%)."""
    rows = []
    for name in mcs_names:
        mcs = get_mcs(name)
        rows.append(
            ThroughputLossRow(
                mcs_name=name,
                min_snr_db=mcs.min_snr_db,
                loss_ch13=throughput_loss(mcs, "CH1"),
                loss_ch4=throughput_loss(mcs, "CH4"),
            )
        )
    return rows


def rssi_offset_db(modulation: str, channel: "int | str | OverlapChannel") -> float:
    """SledZig's in-band power offset (negative dB) vs normal WiFi.

    The coexistence simulator applies this to the WiFi interference power a
    ZigBee node observes during the SledZig *payload*; the preamble stays
    at 0 dB offset.
    """
    return -expected_band_decrease_db(modulation, channel)


def summary() -> str:
    """Human-readable analytic summary across all channels and QAM modes."""
    lines = ["SledZig analytic summary", "=" * 60]
    for modulation in ("qam16", "qam64", "qam256"):
        lines.append(
            f"{modulation}: constellation decrease "
            f"{theoretical_power_decrease_db(modulation):5.1f} dB"
        )
        for ch in all_channels():
            lines.append(
                f"    {ch.name}: expected in-band decrease "
                f"{expected_band_decrease_db(modulation, ch):5.1f} dB"
            )
    lines.append("")
    lines.append("mcs          N_DBPS  extra(CH1-3)  extra(CH4)  loss(CH1-3)  loss(CH4)")
    for row in extra_bits_table():
        mcs = get_mcs(row.mcs_name)
        lines.append(
            f"{row.mcs_name:<12} {row.n_dbps:>6} {row.extra_ch13:>12} "
            f"{row.extra_ch4:>10} {row.extra_ch13 / mcs.n_dbps:>11.2%} "
            f"{row.extra_ch4 / mcs.n_dbps:>9.2%}"
        )
    return "\n".join(lines)
