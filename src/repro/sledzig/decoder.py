"""SledZig receive-side processing (paper Section IV-G).

A standard WiFi receive chain recovers the transmit stream; the SledZig
receiver then only has to *remove the extra bits*.  Their positions are
fixed by three pieces of information: the QAM modulation and coding rate
(both read from the PLCP SIGNAL field) and the ZigBee channel.  The channel
is recovered from the received constellation itself: the overlapped
subcarriers carry only lowest-power points, which makes the per-subcarrier
average power of the affected span stand ~7-19 dB below the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import DecodingError
from repro.sledzig.channels import OverlapChannel, all_channels, get_channel
from repro.sledzig.insertion import plan_insertion
from repro.utils.bits import BitsLike, as_bits, remove_positions
from repro.wifi.params import Mcs, data_subcarrier_index, get_mcs
from repro.wifi.ppdu import SERVICE_BITS, TAIL_BITS
from repro.wifi.receiver import WifiReception


@dataclass
class ChannelDetection:
    """Result of ZigBee-channel detection at the WiFi receiver.

    Attributes:
        channel: the detected overlap channel, or None when no channel's
            span shows the low-power signature.
        ratios_db: per-candidate mean power of the span's data subcarriers
            relative to the other data subcarriers, in dB (CH1..CH4 order).
        threshold_db: decision threshold used.
    """

    channel: Optional[OverlapChannel]
    ratios_db: Sequence[float]
    threshold_db: float


def detect_zigbee_channel(
    data_points: Sequence[np.ndarray],
    threshold_db: float = -4.0,
) -> ChannelDetection:
    """Identify which ZigBee channel (if any) a frame protects.

    Args:
        data_points: per-symbol equalised 48-point arrays from
            :class:`repro.wifi.receiver.WifiReception`.
        threshold_db: a span is declared protected when its data subcarriers
            average at least this much below the remaining data subcarriers.
            The theoretical gap is -7 dB (QAM-16) to -19.3 dB (QAM-256), so
            -4 dB separates cleanly even under noise.
    """
    stack = np.stack([np.asarray(p) for p in data_points])
    if stack.ndim != 2 or stack.shape[1] != 48:
        raise DecodingError("data_points must be per-symbol arrays of 48 points")
    per_subcarrier = np.mean(np.abs(stack) ** 2, axis=0)

    ratios = []
    for candidate in all_channels():
        inside = [data_subcarrier_index(k) for k in candidate.data_subcarriers]
        outside = [i for i in range(48) if i not in inside]
        p_in = float(np.mean(per_subcarrier[inside]))
        p_out = float(np.mean(per_subcarrier[outside]))
        if p_in <= 0 or p_out <= 0:
            ratios.append(0.0)
            continue
        ratios.append(10.0 * np.log10(p_in / p_out))
    best = int(np.argmin(ratios))
    if ratios[best] <= threshold_db:
        return ChannelDetection(all_channels()[best], ratios, threshold_db)
    return ChannelDetection(None, ratios, threshold_db)


@dataclass
class SledZigDecodeResult:
    """Recovered WiFi data plus the detection metadata.

    Attributes:
        data_bits: the original WiFi data bits (extra bits removed).
        channel: the overlap channel used for stripping.
        detection: channel-detection details (None when the channel was
            supplied by the caller).
        n_extra_bits: how many extra bits were removed.
    """

    data_bits: np.ndarray
    channel: OverlapChannel
    detection: Optional[ChannelDetection]
    n_extra_bits: int


class SledZigDecoder:
    """Strips SledZig extra bits from standard WiFi receptions."""

    def __init__(self, channel: "int | str | OverlapChannel | None" = None) -> None:
        self.channel = get_channel(channel) if channel is not None else None

    def decode(
        self,
        reception: WifiReception,
        n_data_bits: Optional[int] = None,
    ) -> SledZigDecodeResult:
        """Recover the original WiFi data bits from a reception.

        Args:
            reception: output of :class:`repro.wifi.receiver.WifiReceiver`.
            n_data_bits: exact data length if known out of band; when None
                the full stripped payload (minus SERVICE/tail/pad) is
                returned and the caller applies its own framing (the
                pipeline uses a 2-octet length header).
        """
        detection: Optional[ChannelDetection] = None
        channel = self.channel
        if channel is None:
            detection = detect_zigbee_channel(reception.data_points)
            if detection.channel is None:
                raise DecodingError(
                    "no protected ZigBee channel detected in the received "
                    f"constellation (ratios {detection.ratios_db})"
                )
            channel = detection.channel

        return self.strip(
            reception.descrambled_field,
            reception.mcs,
            channel,
            n_data_bits=n_data_bits,
            detection=detection,
        )

    @staticmethod
    def strip(
        descrambled_field: BitsLike,
        mcs: "Mcs | str",
        channel: "int | str | OverlapChannel",
        n_data_bits: Optional[int] = None,
        detection: Optional[ChannelDetection] = None,
    ) -> SledZigDecodeResult:
        """Remove extra bits from a descrambled DATA-field stream.

        The positions are recomputed from the deterministic insertion plan —
        the same computation the transmitter ran — so transmitter and
        receiver agree bit-for-bit.
        """
        mcs = get_mcs(mcs) if isinstance(mcs, str) else mcs
        ch = get_channel(channel)
        field = as_bits(descrambled_field)
        if field.size % mcs.n_dbps:
            raise DecodingError(
                f"descrambled field of {field.size} bits is not whole "
                f"symbols of {mcs.n_dbps}"
            )
        n_symbols = field.size // mcs.n_dbps
        plan = plan_insertion(mcs, ch, n_symbols)
        payload = remove_positions(field, plan.extra_positions)
        body = payload[SERVICE_BITS:]
        if n_data_bits is not None:
            if n_data_bits > body.size - TAIL_BITS:
                raise DecodingError(
                    f"requested {n_data_bits} data bits but only "
                    f"{body.size - TAIL_BITS} available"
                )
            body = body[:n_data_bits]
        # When the caller cannot name the exact data length, the returned
        # bits still include tail + pad; higher layers (e.g. the pipeline's
        # 2-octet length header) delimit the true payload.
        return SledZigDecodeResult(
            data_bits=body.astype(np.uint8),
            channel=ch,
            detection=detection,
            n_extra_bits=plan.n_extra,
        )
